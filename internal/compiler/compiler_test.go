package compiler

import (
	"testing"

	"ipim/internal/cube"
	"ipim/internal/halide"
	"ipim/internal/isa"
	"ipim/internal/pixel"
	"ipim/internal/sim"
)

// Pipelines under test.

func brightenPipe() *halide.Pipeline {
	out := halide.NewFunc("brighten").Define(halide.Mul(halide.K(1.5), halide.In(0, 0)))
	return halide.NewPipeline("brighten", out)
}

func blurPipe(pgsm bool) *halide.Pipeline {
	blurx := halide.NewFunc("blurx").Define(
		halide.Mul(halide.Add(halide.Add(halide.In(-1, 0), halide.In(0, 0)), halide.In(1, 0)), halide.K(1.0/3)))
	out := halide.NewFunc("blur").Define(
		halide.Mul(halide.Add(halide.Add(blurx.At(0, -1), blurx.At(0, 0)), blurx.At(0, 1)), halide.K(1.0/3)))
	if pgsm {
		out.LoadPGSM()
	}
	return halide.NewPipeline("blur", out)
}

func twoStagePipe() *halide.Pipeline {
	s1 := halide.NewFunc("s1").Define(
		halide.Add(halide.In(-1, 0), halide.In(1, 0))).ComputeRoot().LoadPGSM()
	out := halide.NewFunc("s2").Define(
		halide.Mul(halide.Add(s1.At(0, -1), s1.At(0, 1)), halide.K(0.25))).LoadPGSM()
	return halide.NewPipeline("twostage", out)
}

func downsamplePipe() *halide.Pipeline {
	out := halide.NewFunc("down").Define(
		halide.Mul(halide.Add(
			halide.Add(halide.InC(halide.CScale(2, -1, 1), halide.C(0)),
				halide.Mul(halide.K(2), halide.InC(halide.CScale(2, 0, 1), halide.C(0)))),
			halide.InC(halide.CScale(2, 1, 1), halide.C(0))), halide.K(0.25))).LoadPGSM()
	return halide.NewPipeline("down", out).OutScale(1, 2)
}

func upsamplePipe() *halide.Pipeline {
	out := halide.NewFunc("up").Define(
		halide.Mul(halide.Add(halide.InC(halide.CScale(1, 0, 2), halide.C(0)),
			halide.InC(halide.CScale(1, 1, 2), halide.C(0))), halide.K(0.5))).LoadPGSM()
	return halide.NewPipeline("up", out).OutScale(2, 1)
}

func selectPipe() *halide.Pipeline {
	out := halide.NewFunc("thresh").Define(
		halide.Sel(halide.LT(halide.In(0, 0), halide.K(0.5)),
			halide.Mul(halide.In(0, 0), halide.K(2)),
			halide.K(1)))
	return halide.NewPipeline("thresh", out)
}

// runPipe compiles and executes a pipeline on a fresh tiny machine and
// compares the simulated output with the halide reference. It returns
// the run stats.
func runPipe(t *testing.T, cfg sim.Config, pipe *halide.Pipeline, img *pixel.Image, opts Options) sim.Stats {
	t.Helper()
	art, err := Compile(&cfg, pipe, img.W, img.H, opts)
	if err != nil {
		t.Fatalf("compile %s: %v", pipe.Name, err)
	}
	m, err := cube.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadInput(m, art, img); err != nil {
		t.Fatal(err)
	}
	stats, err := Execute(m, art)
	if err != nil {
		t.Fatalf("run %s: %v", pipe.Name, err)
	}
	got, err := ReadOutput(m, art)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pipe.Reference(img)
	if err != nil {
		t.Fatal(err)
	}
	if d := pixel.MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("%s: simulated output differs from reference by %g", pipe.Name, d)
	}
	return stats
}

func TestEndToEndPipelines(t *testing.T) {
	cfg := sim.TestTiny() // 2 vaults x 2 PGs x 2 PEs = 8 PEs
	img := pixel.Synth(32, 16, 11)
	cases := []*halide.Pipeline{
		brightenPipe(),
		blurPipe(true),
		blurPipe(false),
		twoStagePipe(),
		selectPipe(),
	}
	for _, p := range cases {
		t.Run(p.Name, func(t *testing.T) {
			stats := runPipe(t, cfg, p, img, Opt)
			if stats.Cycles == 0 || stats.Issued == 0 {
				t.Fatal("no cycles simulated")
			}
		})
	}
}

func TestEndToEndResampling(t *testing.T) {
	cfg := sim.TestTiny()
	// Downsample: output 16x8 = 2x1 tiles of 8x8... need 8 tiles; use
	// output 32x16 => input 64x32.
	t.Run("down", func(t *testing.T) {
		runPipe(t, cfg, downsamplePipe(), pixel.Synth(64, 32, 3), Opt)
	})
	t.Run("up", func(t *testing.T) {
		runPipe(t, cfg, upsamplePipe(), pixel.Synth(16, 8, 4), Opt)
	})
}

func TestAllCompilerOptionsAgree(t *testing.T) {
	cfg := sim.TestTiny()
	img := pixel.Synth(32, 16, 5)
	pipe := blurPipe(true)
	var cycles []int64
	for _, opts := range []Options{Baseline1, Baseline2, Baseline3, Baseline4, Opt} {
		stats := runPipe(t, cfg, pipe, img, opts)
		cycles = append(cycles, stats.Cycles)
	}
	// opt must beat the naive baseline (paper: 3.19x on average).
	if cycles[4] >= cycles[0] {
		t.Errorf("opt (%d cycles) not faster than baseline1 (%d)", cycles[4], cycles[0])
	}
}

func TestSpillingCorrectness(t *testing.T) {
	cfg := sim.TestTiny()
	cfg.DataRFEntries = 12 // force pressure (min legal is 8)
	img := pixel.Synth(32, 16, 6)
	pipe := blurPipe(true)
	art, err := Compile(&cfg, pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}
	if art.Spills == 0 {
		t.Fatal("expected spills with a 12-entry DataRF")
	}
	runPipe(t, cfg, pipe, img, Opt)
}

func TestRFSensitivityDirection(t *testing.T) {
	// Fewer registers must not be faster (Fig. 10a trend).
	img := pixel.Synth(32, 16, 7)
	pipe := blurPipe(true)
	small := sim.TestTiny()
	small.DataRFEntries = 12
	big := sim.TestTiny()
	big.DataRFEntries = 128
	cSmall := runPipe(t, small, pipe, img, Opt).Cycles
	cBig := runPipe(t, big, pipe, img, Opt).Cycles
	if cSmall < cBig {
		t.Errorf("12-entry DataRF (%d cycles) faster than 128-entry (%d)", cSmall, cBig)
	}
}

func TestHistogramEndToEnd(t *testing.T) {
	cfg := sim.TestTiny()
	img := pixel.Synth(32, 16, 8)
	out := halide.NewFunc("hist").Define(halide.In(0, 0))
	pipe := halide.NewPipeline("histogram", out)
	pipe.Histogram = true
	pipe.Bins = 64
	art, err := Compile(&cfg, pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cube.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadInput(m, art, img); err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(m, art); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHistogram(m, art)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pipe.ReferenceHistogram(img)
	if err != nil {
		t.Fatal(err)
	}
	var total int32
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bin %d = %d, want %d", i, got[i], want[i])
		}
		total += got[i]
	}
	if total != int32(img.W*img.H) {
		t.Fatalf("histogram total %d != pixel count %d", total, img.W*img.H)
	}
}

func TestPlanBlurLayout(t *testing.T) {
	cfg := sim.TestTiny()
	pipe := blurPipe(true)
	plan, err := NewPlan(&cfg, pipe, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TilesPerPE != 1 || plan.TilesX != 4 || plan.TilesY != 2 {
		t.Fatalf("tiling = %d x %d, %d per PE", plan.TilesX, plan.TilesY, plan.TilesPerPE)
	}
	// Input needs a 1-pixel halo, X padded to a multiple of 4.
	in := plan.Input
	if in.Y != (halide.Interval{Lo: -1, Hi: 8}) {
		t.Fatalf("input Y region %+v", in.Y)
	}
	if in.X.Lo != -1 || in.X.Len()%4 != 0 {
		t.Fatalf("input X region %+v", in.X)
	}
	// One stage; its output stores the bare (padded) tile.
	if len(plan.Stages) != 1 {
		t.Fatalf("stages = %d", len(plan.Stages))
	}
	out := plan.Stages[0].Out
	if out.Y != (halide.Interval{Lo: 0, Hi: 7}) || out.X.Lo != 0 {
		t.Fatalf("output region %+v %+v", out.X, out.Y)
	}
	// PGSM staging accepted for the blur working set.
	if !plan.Stages[0].Uses[0].Staged {
		t.Fatal("blur input not staged despite load_pgsm")
	}
	// Addresses: input slot covers the region.
	if _, err := in.Addr(-1, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Addr(in.X.Hi+1, 0); err == nil {
		t.Fatal("out-of-region address accepted")
	}
}

func TestPlanErrors(t *testing.T) {
	cfg := sim.TestTiny()
	if _, err := NewPlan(&cfg, blurPipe(false), 30, 16); err == nil {
		t.Error("non-divisible image accepted")
	}
	p := blurPipe(false).IPIMTile(6, 8)
	if _, err := NewPlan(&cfg, p, 48, 16); err == nil {
		t.Error("tile width not multiple of 4 accepted")
	}
	// Tiles not divisible across PEs: 32x16 with 16x16 tiles = 2 tiles
	// over 8 PEs.
	q := blurPipe(false).IPIMTile(16, 16)
	if _, err := NewPlan(&cfg, q, 32, 16); err == nil {
		t.Error("tile count < PE count accepted")
	}
}

func TestPGSMFallbackWhenTooSmall(t *testing.T) {
	cfg := sim.TestTiny()
	cfg.PGSMBytes = 256 // partition = 128 B, far below the blur region
	pipe := blurPipe(true)
	plan, err := NewPlan(&cfg, pipe, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stages[0].Uses[0].Staged {
		t.Fatal("staging accepted despite tiny PGSM")
	}
	// End-to-end still correct via the bank fallback.
	runPipe(t, cfg, pipe, pixel.Synth(32, 16, 12), Opt)
}

func TestPGSMSensitivityDirection(t *testing.T) {
	// Smaller PGSM forces the bank fallback: DRAM traffic must rise
	// substantially (the stencil re-reads every input vector from the
	// bank instead of the scratchpad), and cycles must not improve
	// beyond small-scale noise (Fig. 10b direction).
	img := pixel.Synth(32, 16, 13)
	pipe := blurPipe(true)
	small := sim.TestTiny()
	small.PGSMBytes = 256
	big := sim.TestTiny()
	sSmall := runPipe(t, small, pipe, img, Opt)
	sBig := runPipe(t, big, pipe, img, Opt)
	if sSmall.DRAM.Reads < 2*sBig.DRAM.Reads {
		t.Errorf("bank fallback reads = %d, staged reads = %d: staging did not cut DRAM traffic",
			sSmall.DRAM.Reads, sBig.DRAM.Reads)
	}
	if float64(sSmall.Cycles) < 0.9*float64(sBig.Cycles) {
		t.Errorf("256B PGSM (%d cycles) much faster than 8KB (%d)", sSmall.Cycles, sBig.Cycles)
	}
}

func TestOptionsNames(t *testing.T) {
	names := map[string]Options{
		"opt": Opt, "baseline1": Baseline1, "baseline2": Baseline2,
		"baseline3": Baseline3, "baseline4": Baseline4,
	}
	for want, o := range names {
		if o.Name() != want {
			t.Errorf("Name() = %q, want %q", o.Name(), want)
		}
	}
}

// Property: reordering emits a permutation of the block that respects
// every dependency edge of the original order.
func TestReorderPreservesDependencies(t *testing.T) {
	cfg := sim.TestTiny()
	pipe := blurPipe(true)
	plan, err := NewPlan(&cfg, pipe, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Lower(plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Allocate(mod, plan, Opt); err != nil {
		t.Fatal(err)
	}
	for bi, b := range mod.blocks {
		if !b.reorderable || len(b.ins) < 2 {
			continue
		}
		// Tag each instruction with its original index through the
		// Phase field (unused by every opcode except sync, which never
		// appears in reorderable blocks).
		for i := range b.ins {
			if b.ins[i].Op == isa.OpSync {
				t.Fatalf("block %d: sync in reorderable block", bi)
			}
			b.ins[i].Phase = i
		}
		edges := DepEdgesForTest(&cfg, b, true)
		g := buildDeps(&cfg, b, true)
		schedule(&cfg, b, g)
		newPos := make([]int, len(b.ins))
		seen := make([]bool, len(b.ins))
		for pos := range b.ins {
			orig := b.ins[pos].Phase
			if orig < 0 || orig >= len(b.ins) || seen[orig] {
				t.Fatalf("block %d: not a permutation (tag %d)", bi, orig)
			}
			seen[orig] = true
			newPos[orig] = pos
		}
		for i, succs := range edges {
			for _, j := range succs {
				if newPos[i] >= newPos[j] {
					t.Fatalf("block %d: dependency %d->%d violated (%d >= %d)", bi, i, j, newPos[i], newPos[j])
				}
			}
		}
	}
}
