package compiler

import (
	"fmt"

	"ipim/internal/halide"
	"ipim/internal/isa"
)

// VRegBase is the first virtual register id. Operand indices below it
// refer to pre-colored physical registers (the AddrRF ID registers
// A0–A3); indices at or above it are virtual and assigned by register
// allocation.
const VRegBase = 1 << 20

// IsVirtual reports whether a register operand is virtual.
func IsVirtual(idx int) bool { return idx >= VRegBase }

// memTag identifies which planned memory object an instruction
// touches, enabling precise alias edges in the reordering pass. -1
// means "does not touch that space".
type memTag struct {
	bank int // buffer / spill-slot / const-pool id
	pgsm int // staged-region id
	vsm  int // VSM region id
}

var noTag = memTag{bank: -1, pgsm: -1, vsm: -1}

// block is a straight-line run of instructions. Reorderable blocks may
// be permuted by Algorithm 1; control blocks (loop bookkeeping, sync)
// keep their order. tags is index-aligned with ins.
type block struct {
	labelID     int // label bound at block start; -1 if none
	reorderable bool
	ins         []isa.Instruction
	tags        []memTag
}

// module is the compiler's working form of a program: blocks plus a
// label count. It converts to isa.Program after all passes run.
type module struct {
	blocks []*block
	labels int
	name   string
}

func (m *module) newLabel() int {
	m.labels++
	return m.labels - 1
}

// emit converts the module to a finalized isa.Program.
func (m *module) emit() (*isa.Program, error) {
	p := &isa.Program{Name: m.name}
	for i := 0; i < m.labels; i++ {
		p.NewLabel()
	}
	for _, b := range m.blocks {
		if b.labelID >= 0 {
			p.BindAt(b.labelID, len(p.Ins))
		}
		p.Ins = append(p.Ins, b.ins...)
	}
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// CRF register conventions used by generated code.
const (
	crfLoopTarget = 0 // jump target of the tile loop
	crfLoopCount  = 1 // remaining tile iterations
)

// kern builds the virtual-register IR for one pipeline.
type kern struct {
	plan  *Plan
	mod   *module
	cur   *block
	simb  uint64
	nextD int
	nextA int

	// Per-stage state.
	constReg   map[int]int // const pool index -> DRF vreg
	useOf      map[*BufPlan]*UsePlan
	baseReg    map[*BufPlan]int // ARF vreg holding current slot base
	pgsmBase   int              // ARF vreg holding the PE's PGSM partition base
	cse        map[cseKey]int
	simplified map[*halide.Func]halide.Expr
	phase      int

	// Multi-array (stage-ahead) state: the PGSM partition halves.
	// pgsmBase aliases pgsmCur while the schedule is active, so body
	// reads go through the alternating register; the loop epilogue
	// rotates cur/next through tmp.
	pgsmCur, pgsmNext, pgsmTmp int

	// Halo-exchange state (see exchange.go).
	exG         int // ARF vreg: vault-local PE index g
	exVdst      int // ARF vreg: this tile's VSM strip base
	exPgsmStrip int // ARF vreg: this tile's PGSM strip base (ViaPGSM)
}

type cseKey struct {
	buf            *BufPlan
	a0, a1, a2, a3 uint32
}

func newKern(plan *Plan) *kern {
	return &kern{
		plan:       plan,
		mod:        &module{name: plan.Pipe.Name},
		simb:       isa.MaskAll(plan.Cfg.PEsPerVault()),
		nextD:      VRegBase,
		nextA:      VRegBase * 2, // disjoint from DRF vreg ids
		simplified: map[*halide.Func]halide.Expr{},
	}
}

func (k *kern) startBlock(labelID int, reorderable bool) {
	k.cur = &block{labelID: labelID, reorderable: reorderable}
	k.mod.blocks = append(k.mod.blocks, k.cur)
}

func (k *kern) emit(in isa.Instruction) {
	k.emitTagged(in, noTag)
}

func (k *kern) emitTagged(in isa.Instruction, tag memTag) {
	k.cur.ins = append(k.cur.ins, in)
	k.cur.tags = append(k.cur.tags, tag)
}

// Reserved tag ids.
const (
	constPoolTag = 0
	firstBufTag  = 1
)

// bufTag returns the alias tag for a planned buffer.
func (k *kern) bufTag(b *BufPlan) int {
	for i, s := range k.plan.Stages {
		if s.Out == b {
			return firstBufTag + 1 + i
		}
	}
	return firstBufTag // the input buffer
}

func (k *kern) newD() int { k.nextD++; return k.nextD - 1 }
func (k *kern) newA() int { k.nextA++; return k.nextA - 1 }

// liA emits a load-immediate into a fresh ARF vreg (and aT, aT, #0 then
// iadd): the ISA has no seti for the AddrRF.
func (k *kern) liA(v uint32) int {
	a := k.newA()
	and := isa.New(isa.OpCalcARF)
	and.ALU, and.Dst, and.Src1 = isa.And, a, a
	and.HasImm, and.Imm = true, 0
	and.SimbMask = k.simb
	k.emit(and)
	add := isa.New(isa.OpCalcARF)
	add.ALU, add.Dst, add.Src1 = isa.IAdd, a, a
	add.HasImm, add.Imm = true, int64(v)
	add.SimbMask = k.simb
	k.emit(add)
	return a
}

// addA emits dst = src + imm into a fresh ARF vreg.
func (k *kern) addA(src int, imm int64) int {
	return k.calcRI(isa.IAdd, src, imm)
}

// calcRI emits a register-immediate scalar calc into a fresh ARF vreg.
func (k *kern) calcRI(op isa.ALUOp, src int, imm int64) int {
	a := k.newA()
	k.calcRIInto(op, a, src, imm)
	return a
}

// calcRIInto emits dst = op(src, #imm).
func (k *kern) calcRIInto(op isa.ALUOp, dst, src int, imm int64) {
	in := isa.New(isa.OpCalcARF)
	in.ALU, in.Dst, in.Src1 = op, dst, src
	in.HasImm, in.Imm = true, imm
	in.SimbMask = k.simb
	k.emit(in)
}

// calcRR emits a register-register scalar calc into a fresh ARF vreg.
func (k *kern) calcRR(op isa.ALUOp, src1, src2 int) int {
	a := k.newA()
	k.calcRRInto(op, a, src1, src2)
	return a
}

// calcRRInto emits dst = op(src1, src2).
func (k *kern) calcRRInto(op isa.ALUOp, dst, src1, src2 int) {
	in := isa.New(isa.OpCalcARF)
	in.ALU, in.Dst, in.Src1, in.Src2 = op, dst, src1, src2
	in.SimbMask = k.simb
	k.emit(in)
}

// bumpA emits reg += imm in place.
func (k *kern) bumpA(reg int, imm int64) {
	in := isa.New(isa.OpCalcARF)
	in.ALU, in.Dst, in.Src1 = isa.IAdd, reg, reg
	in.HasImm, in.Imm = true, imm
	in.SimbMask = k.simb
	k.emit(in)
}

// constVec returns the DRF vreg holding pool constant v, loading it
// from the bank-resident constant pool on first use in the stage.
func (k *kern) constVec(v float32) int {
	idx := k.plan.ConstIndex(v)
	if r, ok := k.constReg[idx]; ok {
		return r
	}
	d := k.newD()
	ld := isa.New(isa.OpLdRF)
	ld.Dst = d
	ld.Addr = k.plan.ConstAddr(idx)
	ld.SimbMask = k.simb
	k.emitTagged(ld, memTag{bank: constPoolTag, pgsm: -1, vsm: -1})
	k.constReg[idx] = d
	return d
}

// comp emits a vector ALU op into a fresh vreg.
func (k *kern) comp(op isa.ALUOp, src1, src2 int) int {
	d := k.newD()
	k.compInto(op, d, src1, src2)
	return d
}

// compInto emits a vector ALU op into an existing vreg (in-place
// accumulation; fmac additionally reads dst). The dependency passes
// handle the resulting WAW/WAR edges.
func (k *kern) compInto(op isa.ALUOp, dst, src1, src2 int) {
	in := isa.New(isa.OpComp)
	in.ALU, in.Dst, in.Src1, in.Src2 = op, dst, src1, src2
	in.SimbMask = k.simb
	k.emit(in)
}

var binOpALU = map[halide.BinOp]isa.ALUOp{
	halide.OpAdd: isa.FAdd,
	halide.OpSub: isa.FSub,
	halide.OpMul: isa.FMul,
	halide.OpDiv: isa.FDiv,
	halide.OpMin: isa.FMin,
	halide.OpMax: isa.FMax,
	halide.OpLT:  isa.FCmpLT,
}

// lanes are the four (x, y) producer/consumer-local coordinates one
// vector evaluation covers.
type lanes [4][2]int

func (l lanes) apply(cx, cy halide.Coord) lanes {
	var out lanes
	for i := 0; i < 4; i++ {
		out[i][0] = cx.Apply(l[i][0])
		out[i][1] = cy.Apply(l[i][1])
	}
	return out
}

// Lower builds the virtual-register module for a planned pipeline.
func Lower(plan *Plan) (*module, error) {
	k := newKern(plan)
	for i, sp := range plan.Stages {
		if i > 0 {
			// compute_root boundary: intermediate data lands in the
			// banks before the next kernel starts (paper Sec. V-A).
			k.startBlock(-1, false)
			sync := isa.New(isa.OpSync)
			sync.Phase = k.phase
			k.phase++
			k.emit(sync)
		}
		if err := k.lowerStage(sp); err != nil {
			return nil, fmt.Errorf("compiler: stage %q: %w", sp.F.Name, err)
		}
	}
	return k.mod, nil
}

// lowerStage emits one compute_root kernel: prologue, tile loop with
// optional PGSM staging, unrolled compute body, loop control.
func (k *kern) lowerStage(sp *StagePlan) error {
	plan := k.plan
	k.constReg = map[int]int{}
	k.useOf = map[*BufPlan]*UsePlan{}
	k.baseReg = map[*BufPlan]int{}
	for i := range sp.Uses {
		u := &sp.Uses[i]
		k.useOf[u.Buf] = u
	}

	// Prologue: constant loads happen lazily inside the body (they are
	// loop-invariant but reloading per stage keeps liveness simple);
	// base registers and loop bookkeeping are set up here.
	k.startBlock(-1, true)
	k.baseReg[sp.Out] = k.liA(sp.Out.Base)
	anyStaged := false
	for i := range sp.Uses {
		u := &sp.Uses[i]
		k.baseReg[u.Buf] = k.liA(u.Buf.Base)
		if u.Staged {
			anyStaged = true
		}
	}
	k.pgsmBase, k.pgsmCur, k.pgsmNext, k.pgsmTmp = -1, -1, -1, -1
	if anyStaged {
		// Partition base = peID * (PGSMBytes / PEsPerPG); peID is the
		// hardware-initialized A0.
		part := int64(plan.Cfg.PGSMBytes / plan.Cfg.PEsPerPG)
		k.pgsmBase = k.calcRI(isa.IMul, isa.ARFPeID, part)
		if sp.StageAhead {
			// Multi-array double buffer: split the partition into ping
			// (offset 0) and pong (offset StageBytes) halves, stage the
			// first tile's operands into ping here in the prologue, and
			// alias pgsmBase to the rotating cur register so the body's
			// compute reads follow the swap.
			k.pgsmCur = k.addA(k.pgsmBase, 0)
			k.pgsmNext = k.addA(k.pgsmBase, int64(sp.StageBytes))
			k.pgsmTmp = k.liA(0)
			k.pgsmBase = k.pgsmCur
			for i := range sp.Uses {
				u := &sp.Uses[i]
				if u.Staged {
					k.emitStaging(u)
				}
			}
		}
	}
	if sp.Publish {
		// Vault-local PE index g = pgID*PEsPerPG + peID, and the
		// per-tile VSM strip cursor (tile t = k*N + g).
		g := k.calcRI(isa.IMul, isa.ARFPgID, int64(plan.Cfg.PEsPerPG))
		k.exG = k.calcRR(isa.IAdd, g, isa.ARFPeID)
		k.exVdst = k.calcRI(isa.IMul, k.exG, int64(sp.Out.StripBytes()))
		k.exPgsmStrip = -1
		if sp.Out.ViaPGSM {
			part := int64(plan.Cfg.PGSMBytes / plan.Cfg.PEsPerPG)
			p := k.calcRI(isa.IMul, isa.ARFPeID, part)
			k.exPgsmStrip = k.calcRI(isa.IAdd, p, int64(sp.Out.StripPGSMBase))
		}
	}

	// Loop bookkeeping in a control block.
	k.startBlock(-1, false)
	loop := k.mod.newLabel()
	seti := isa.New(isa.OpSetiCRF)
	seti.Dst = crfLoopCount
	seti.Imm = int64(plan.TilesPerPE)
	k.emit(seti)
	setl := isa.New(isa.OpSetiCRF)
	setl.Dst = crfLoopTarget
	setl.ImmLabel = loop
	k.emit(setl)

	// Body: staging then compute, reorderable. Under the stage-ahead
	// schedule the current tile's operands were staged by the previous
	// iteration (or the prologue); the body instead prefetches the
	// NEXT tile's operands into the idle half, which the list
	// scheduler interleaves with this tile's compute.
	k.startBlock(loop, true)
	k.cse = map[cseKey]int{}
	for i := range sp.Uses {
		u := &sp.Uses[i]
		if !u.Staged {
			continue
		}
		if sp.StageAhead {
			k.emitStagingNext(u)
		} else {
			k.emitStaging(u)
		}
	}
	if err := k.emitCompute(sp); err != nil {
		return err
	}
	if sp.Publish {
		k.emitPublish(sp)
	}

	// Loop control: bump bases, swap staging halves, decrement, branch.
	k.startBlock(-1, false)
	bumped := map[int]bool{}
	for _, reg := range orderedBaseRegs(k.baseReg, sp) {
		if !bumped[reg.reg] {
			k.bumpA(reg.reg, int64(reg.slot)*1)
			bumped[reg.reg] = true
		}
	}
	if sp.StageAhead {
		// Rotate cur/next through tmp: the half just prefetched becomes
		// the compute half of the next iteration.
		k.calcRIInto(isa.IAdd, k.pgsmTmp, k.pgsmCur, 0)
		k.calcRIInto(isa.IAdd, k.pgsmCur, k.pgsmNext, 0)
		k.calcRIInto(isa.IAdd, k.pgsmNext, k.pgsmTmp, 0)
	}
	if sp.Publish {
		k.bumpA(k.exVdst, int64(plan.NumPEs*sp.Out.StripBytes()))
		if k.exPgsmStrip >= 0 {
			k.bumpA(k.exPgsmStrip, int64(sp.Out.StripBytes()))
		}
	}
	dec := isa.New(isa.OpCalcCRF)
	dec.ALU, dec.Dst, dec.Src1 = isa.ISub, crfLoopCount, crfLoopCount
	dec.HasImm, dec.Imm = true, 1
	k.emit(dec)
	cj := isa.New(isa.OpCJump)
	cj.Cond, cj.Src1 = crfLoopCount, crfLoopTarget
	k.emit(cj)

	if sp.Publish {
		return k.emitFill(sp)
	}
	return nil
}

type baseBump struct {
	reg  int
	slot uint32
}

// orderedBaseRegs returns base registers with their slot strides in a
// deterministic order (output first, then uses in plan order).
func orderedBaseRegs(baseReg map[*BufPlan]int, sp *StagePlan) []baseBump {
	var out []baseBump
	out = append(out, baseBump{baseReg[sp.Out], sp.Out.Slot})
	for i := range sp.Uses {
		b := sp.Uses[i].Buf
		out = append(out, baseBump{baseReg[b], b.Slot})
	}
	return out
}

// emitStaging copies the rows a use needs (full padded width) from the
// bank into the PE's PGSM partition (the load_pgsm schedule, Fig. 3b).
func (k *kern) emitStaging(u *UsePlan) {
	b := u.Buf
	rowBytes := b.Width() * 4
	for ly := u.Y.Lo; ly <= u.Y.Hi; ly++ {
		rowOff := (ly - b.Y.Lo) * rowBytes
		pgsmRow := int(u.PGSMOff) + (ly-u.Y.Lo)*rowBytes
		for cb := 0; cb < rowBytes; cb += 16 {
			aBank := k.addA(k.baseReg[b], int64(rowOff+cb))
			aPgsm := k.addA(k.pgsmBase, int64(pgsmRow+cb))
			ld := isa.New(isa.OpLdPGSM)
			ld.Addr, ld.Indirect = uint32(aBank), true
			ld.Addr2, ld.Indirect2 = uint32(aPgsm), true
			ld.SimbMask = k.simb
			k.emitTagged(ld, memTag{bank: k.bufTag(b), pgsm: k.bufTag(b), vsm: -1})
		}
	}
}

// stageNextTagBias offsets the pgsm alias tag of next-tile staging
// writes. The idle half never aliases the compute half within one
// iteration, so giving the prefetch a distinct tag removes the
// staging-before-read edges and lets the list scheduler overlap the
// DMA stream with compute — the multi-array schedule's entire win.
// Spill tags use 1<<16; this bias keeps the spaces disjoint.
const stageNextTagBias = 1 << 17

// emitStagingNext prefetches the next loop slot's rows of a staged use
// into the idle PGSM half (the stage-ahead schedule). The bank base is
// clamped to the last slot so the final iteration redundantly re-stages
// data nothing reads instead of running off the buffer.
func (k *kern) emitStagingNext(u *UsePlan) {
	b := u.Buf
	rowBytes := b.Width() * 4
	next := k.calcRI(isa.IAdd, k.baseReg[b], int64(b.Slot))
	last := int64(b.Base) + int64(k.plan.TilesPerPE-1)*int64(b.Slot)
	k.calcRIInto(isa.IMin, next, next, last)
	for ly := u.Y.Lo; ly <= u.Y.Hi; ly++ {
		rowOff := (ly - b.Y.Lo) * rowBytes
		pgsmRow := int(u.PGSMOff) + (ly-u.Y.Lo)*rowBytes
		for cb := 0; cb < rowBytes; cb += 16 {
			aBank := k.addA(next, int64(rowOff+cb))
			aPgsm := k.addA(k.pgsmNext, int64(pgsmRow+cb))
			ld := isa.New(isa.OpLdPGSM)
			ld.Addr, ld.Indirect = uint32(aBank), true
			ld.Addr2, ld.Indirect2 = uint32(aPgsm), true
			ld.SimbMask = k.simb
			k.emitTagged(ld, memTag{bank: k.bufTag(b), pgsm: stageNextTagBias + k.bufTag(b), vsm: -1})
		}
	}
}

// emitCompute unrolls the stage body: one vector evaluation per group
// of four output pixels (vectorize(xi, 4), Fig. 3c). The compute region
// is the full stored region under overlapped tiling and the bare core
// under halo exchange.
func (k *kern) emitCompute(sp *StagePlan) error {
	out := sp.Out
	for ly := sp.CoreY.Lo; ly <= sp.CoreY.Hi; ly++ {
		for lx := sp.CoreX.Lo; lx <= sp.CoreX.Hi; lx += 4 {
			var ln lanes
			for i := 0; i < 4; i++ {
				ln[i] = [2]int{lx + i, ly}
			}
			v, err := k.evalExpr(k.simplifyOf(sp.F), ln)
			if err != nil {
				return err
			}
			off, err := out.Addr(lx, ly)
			if err != nil {
				return err
			}
			aT := k.addA(k.baseReg[out], int64(off))
			st := isa.New(isa.OpStRF)
			st.Dst = v
			st.Addr, st.Indirect = uint32(aT), true
			st.SimbMask = k.simb
			k.emitTagged(st, memTag{bank: k.bufTag(out), pgsm: -1, vsm: -1})
		}
	}
	return nil
}

// evalExpr lowers one expression evaluated at the given lane
// coordinates, returning the DRF vreg holding the result vector.
func (k *kern) evalExpr(e halide.Expr, ln lanes) (int, error) {
	switch t := e.(type) {
	case halide.Const:
		return k.constVec(t.V), nil
	case halide.Bin:
		a, err := k.evalExpr(t.A, ln)
		if err != nil {
			return 0, err
		}
		b, err := k.evalExpr(t.B, ln)
		if err != nil {
			return 0, err
		}
		return k.comp(binOpALU[t.Op], a, b), nil
	case halide.Select:
		c, err := k.evalExpr(t.Cond, ln)
		if err != nil {
			return 0, err
		}
		a, err := k.evalExpr(t.Then, ln)
		if err != nil {
			return 0, err
		}
		b, err := k.evalExpr(t.Else, ln)
		if err != nil {
			return 0, err
		}
		// Arithmetic blend (matches the reference interpreter).
		ca := k.comp(isa.FMul, c, a)
		one := k.constVec(1)
		notc := k.comp(isa.FSub, one, c)
		cb := k.comp(isa.FMul, notc, b)
		return k.comp(isa.FAdd, ca, cb), nil
	case halide.Access:
		nl := ln.apply(t.CX, t.CY)
		if t.Func != nil && !k.isMaterialized(t.Func) {
			return k.evalExpr(k.simplifyOf(t.Func), nl)
		}
		var buf *BufPlan
		if t.Func == nil {
			buf = k.plan.Input
		} else {
			buf = k.plan.ByFunc[t.Func]
		}
		u := k.useOf[buf]
		if u == nil {
			return 0, fmt.Errorf("access to unplanned buffer %q", buf.Name)
		}
		return k.loadLanes(u, nl)
	case halide.Reduce:
		// Ordered accumulation into a private register: mov copies the
		// first term's bits exactly (no NaN renormalization — mov is an
		// integer-class op), then each following term folds in order.
		// A multiply term becomes one fmac; EvalF(FMac) is acc + a*b
		// with both roundings, bit-identical to the reference's
		// add-of-mul.
		first, err := k.evalExpr(t.Terms[0], ln)
		if err != nil {
			return 0, err
		}
		acc := k.comp(isa.Mov, first, first)
		for _, term := range t.Terms[1:] {
			if bin, ok := term.(halide.Bin); ok && bin.Op == halide.OpMul {
				a, err := k.evalExpr(bin.A, ln)
				if err != nil {
					return 0, err
				}
				b, err := k.evalExpr(bin.B, ln)
				if err != nil {
					return 0, err
				}
				k.compInto(isa.FMac, acc, a, b)
				continue
			}
			v, err := k.evalExpr(term, ln)
			if err != nil {
				return 0, err
			}
			k.compInto(isa.FAdd, acc, acc, v)
		}
		return acc, nil
	case halide.Tab:
		// Plan-time validation (checkTabs) guarantees the clamped
		// index is identical across the four lanes and invariant over
		// tiles; compute it per lane anyway and fail loudly if the
		// schedule ever violates that, then splat the pool constant.
		idx := -1
		for i := 0; i < 4; i++ {
			j := t.CX.Apply(ln[i][0]) + t.CY.Apply(ln[i][1])
			if j < 0 {
				j = 0
			}
			if j >= len(t.Vals) {
				j = len(t.Vals) - 1
			}
			if i == 0 {
				idx = j
			} else if j != idx {
				return 0, fmt.Errorf("tab index varies across lanes (%d vs %d)", idx, j)
			}
		}
		return k.constVec(t.Vals[idx]), nil
	}
	return 0, fmt.Errorf("unknown expr node %T", e)
}

func (k *kern) isMaterialized(f *halide.Func) bool {
	return k.plan.ByFunc[f] != nil
}

// simplifyOf returns the func's definition after the bit-exact-safe
// simplifier, cached per func.
func (k *kern) simplifyOf(f *halide.Func) halide.Expr {
	if e, ok := k.simplified[f]; ok {
		return e
	}
	e := halide.Simplify(f.E)
	k.simplified[f] = e
	return e
}

// loadLanes materializes a vector whose lane i holds buf[nl[i]]. A
// unit-stride row access becomes one (possibly unaligned) vector load;
// anything else becomes per-lane masked loads.
func (k *kern) loadLanes(u *UsePlan, nl lanes) (int, error) {
	b := u.Buf
	var addrs [4]uint32
	for i := 0; i < 4; i++ {
		var off uint32
		var err error
		if u.Staged {
			off, err = k.stagedAddr(u, nl[i][0], nl[i][1])
		} else {
			off, err = b.Addr(nl[i][0], nl[i][1])
		}
		if err != nil {
			return 0, err
		}
		addrs[i] = off
	}
	key := cseKey{b, addrs[0], addrs[1], addrs[2], addrs[3]}
	if r, ok := k.cse[key]; ok {
		return r, nil
	}
	base := k.baseReg[b]
	if u.Staged {
		base = k.pgsmBase
	}
	tag := memTag{bank: -1, pgsm: -1, vsm: -1}
	if u.Staged {
		tag.pgsm = k.bufTag(b)
	} else {
		tag.bank = k.bufTag(b)
	}
	d := k.newD()
	if addrs[1] == addrs[0]+4 && addrs[2] == addrs[0]+8 && addrs[3] == addrs[0]+12 {
		aT := k.addA(base, int64(addrs[0]))
		ld := isa.New(k.loadOp(u))
		ld.Dst = d
		ld.Addr, ld.Indirect = uint32(aT), true
		ld.SimbMask = k.simb
		k.emitTagged(ld, tag)
	} else {
		for l := 0; l < 4; l++ {
			aT := k.addA(base, int64(addrs[l])-int64(4*l))
			ld := isa.New(k.loadOp(u))
			ld.Dst = d
			ld.Addr, ld.Indirect = uint32(aT), true
			ld.VecMask = 1 << uint(l)
			ld.SimbMask = k.simb
			k.emitTagged(ld, tag)
		}
	}
	k.cse[key] = d
	return d, nil
}

func (k *kern) loadOp(u *UsePlan) isa.Opcode {
	if u.Staged {
		return isa.OpRdPGSM
	}
	return isa.OpLdRF
}

// stagedAddr maps producer-local coordinates to the PGSM-partition
// offset of the staged copy.
func (k *kern) stagedAddr(u *UsePlan, lx, ly int) (uint32, error) {
	b := u.Buf
	if lx < b.X.Lo || lx > b.X.Hi || ly < u.Y.Lo || ly > u.Y.Hi {
		return 0, fmt.Errorf("staged access (%d,%d) outside staged rows y%v of %s", lx, ly, u.Y, b.Name)
	}
	return u.PGSMOff + uint32(((ly-u.Y.Lo)*b.Width()+(lx-b.X.Lo))*4), nil
}
