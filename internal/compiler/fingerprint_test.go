package compiler

import (
	"testing"

	"ipim/internal/dram"
	"ipim/internal/halide"
	"ipim/internal/sim"
	"ipim/internal/workloads"
)

func fpBlurPipe() *halide.Pipeline {
	bx := halide.NewFunc("bx").Define(
		halide.Mul(halide.Add(halide.In(-1, 0), halide.In(1, 0)), halide.K(0.5)))
	out := halide.NewFunc("by").Define(
		halide.Mul(halide.Add(bx.At(0, -1), bx.At(0, 1)), halide.K(0.5)))
	return halide.NewPipeline("blur", out)
}

func TestPipelineFingerprintScheduleIndependent(t *testing.T) {
	base := PipelineFingerprint(fpBlurPipe())

	// The tuned schedule dimensions must not move the fingerprint.
	retiled := fpBlurPipe().IPIMTile(16, 4)
	retiled.Output.SetLoadPGSM(true)
	if got := PipelineFingerprint(retiled); got != base {
		t.Fatalf("retiled+pgsm fingerprint %x != base %x", got, base)
	}

	// Renaming stages must not move it either (structural identity).
	renamed := fpBlurPipe()
	renamed.Output.Name = "other"
	if got := PipelineFingerprint(renamed); got != base {
		t.Fatalf("renamed fingerprint %x != base %x", got, base)
	}
}

func TestPipelineFingerprintAlgorithmSensitive(t *testing.T) {
	base := PipelineFingerprint(fpBlurPipe())

	// A different constant is a different algorithm.
	altK := fpBlurPipe()
	altK.Output.E = halide.Mul(altK.Output.E, halide.K(2))
	if PipelineFingerprint(altK) == base {
		t.Fatal("scaled algorithm collided with base")
	}

	// compute_root changes materialization, hence lowering.
	rooted := fpBlurPipe()
	// The producer is reachable through the output's expression.
	var prod *halide.Func
	_ = walkFuncs(rooted.Output.E, func(f *halide.Func) { prod = f })
	if prod == nil {
		t.Fatal("no producer found")
	}
	prod.ComputeRoot()
	if PipelineFingerprint(rooted) == base {
		t.Fatal("compute_root variant collided with base")
	}

	// Every Table II workload must have a distinct fingerprint.
	seen := map[uint64]string{}
	for _, wl := range workloads.All() {
		fp := PipelineFingerprint(wl.Build().Pipe)
		if prev, dup := seen[fp]; dup {
			t.Fatalf("workloads %s and %s share fingerprint %x", prev, wl.Name, fp)
		}
		seen[fp] = wl.Name
		// And be stable across rebuilds.
		if again := PipelineFingerprint(wl.Build().Pipe); again != fp {
			t.Fatalf("workload %s fingerprint unstable: %x then %x", wl.Name, fp, again)
		}
	}
}

// walkFuncs visits every producer Func in an expression tree.
func walkFuncs(e halide.Expr, fn func(*halide.Func)) error {
	switch t := e.(type) {
	case halide.Access:
		if t.Func != nil {
			fn(t.Func)
			return walkFuncs(t.Func.E, fn)
		}
	case halide.Bin:
		if err := walkFuncs(t.A, fn); err != nil {
			return err
		}
		return walkFuncs(t.B, fn)
	case halide.Select:
		if err := walkFuncs(t.Cond, fn); err != nil {
			return err
		}
		if err := walkFuncs(t.Then, fn); err != nil {
			return err
		}
		return walkFuncs(t.Else, fn)
	}
	return nil
}

func TestConfigDigestIgnoresTunedPolicies(t *testing.T) {
	a := sim.TestTiny()
	b := sim.TestTiny()
	b.Page, b.Sched = dram.ClosePage, dram.FCFS
	if ConfigDigest(&a, Opt) != ConfigDigest(&b, Opt) {
		t.Fatal("digest moved with the tuned DRAM policies")
	}
	c := sim.TestTiny()
	c.PGsPerVault *= 2
	if ConfigDigest(&a, Opt) == ConfigDigest(&c, Opt) {
		t.Fatal("digest ignored a machine-shape change")
	}
	if ConfigDigest(&a, Opt) == ConfigDigest(&a, Baseline1) {
		t.Fatal("digest ignored the compiler options")
	}
}
