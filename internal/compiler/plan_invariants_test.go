package compiler

import (
	"testing"

	"ipim/internal/halide"
	"ipim/internal/pixel"
	"ipim/internal/sim"
	"ipim/internal/workloads"
)

// Plan-level invariants, checked across the whole Table II suite:
// buffer allocations must tile the bank address space without overlap,
// staging assignments must fit their PGSM partitions, and exchange
// geometry must be self-consistent.

func planOf(t *testing.T, wl workloads.Workload) *Plan {
	t.Helper()
	w := wl.Build()
	cfg := sim.TestTiny()
	if w.Pipe.ClampedStages {
		cfg = sim.TestTinyOneVault()
	}
	plan, err := NewPlan(&cfg, w.Pipe, wl.TestW, wl.TestH)
	if err != nil {
		t.Fatalf("%s: %v", wl.Name, err)
	}
	return plan
}

func TestPlanBufferRegionsDisjoint(t *testing.T) {
	for _, wl := range workloads.All() {
		plan := planOf(t, wl)
		type region struct {
			name   string
			lo, hi uint32
		}
		var regions []region
		add := func(name string, lo uint32, size int) {
			if size <= 0 {
				return
			}
			regions = append(regions, region{name, lo, lo + uint32(size)})
		}
		add("consts", plan.ConstBase, 16*256)
		if plan.Input != nil {
			add(plan.Input.Name, plan.Input.Base, int(plan.Input.Slot)*plan.TilesPerPE)
		}
		for _, sp := range plan.Stages {
			add(sp.Out.Name, sp.Out.Base, int(sp.Out.Slot)*plan.TilesPerPE)
		}
		if plan.Pipe.Histogram {
			bins := plan.Pipe.Bins * 4
			add("histPG", plan.HistPG, bins)
			add("histFinal", plan.HistFinal, bins)
			add("histGlobal", plan.HistGlobal, bins)
		}
		add("spill", plan.SpillBase, 16) // at least the start is beyond everything
		for i := range regions {
			for j := i + 1; j < len(regions); j++ {
				a, b := regions[i], regions[j]
				if a.lo < b.hi && b.lo < a.hi {
					t.Errorf("%s: regions %s [%#x,%#x) and %s [%#x,%#x) overlap",
						wl.Name, a.name, a.lo, a.hi, b.name, b.lo, b.hi)
				}
			}
		}
	}
}

func TestPlanStagingFitsPartition(t *testing.T) {
	for _, wl := range workloads.All() {
		plan := planOf(t, wl)
		partition := plan.Cfg.PGSMBytes / plan.Cfg.PEsPerPG
		for _, sp := range plan.Stages {
			var staged int
			for _, u := range sp.Uses {
				if u.Staged {
					sz := u.Buf.Width() * u.Y.Len() * 4
					if int(u.PGSMOff)+sz > partition {
						t.Errorf("%s/%s: staged region [%d,%d) beyond %d-byte partition",
							wl.Name, sp.F.Name, u.PGSMOff, int(u.PGSMOff)+sz, partition)
					}
					staged += sz
				}
			}
			if sp.Out.ViaPGSM {
				strips := sp.Out.StripBytes() * plan.TilesPerPE
				if int(sp.Out.StripPGSMBase)+strips > partition {
					t.Errorf("%s/%s: strip region beyond partition", wl.Name, sp.F.Name)
				}
				if staged > int(sp.Out.StripPGSMBase) {
					t.Errorf("%s/%s: staging (%d) collides with strips at %d",
						wl.Name, sp.F.Name, staged, sp.Out.StripPGSMBase)
				}
			}
		}
	}
}

func TestPlanExchangeGeometry(t *testing.T) {
	for _, wl := range workloads.All() {
		w := wl.Build()
		if !w.Pipe.ClampedStages {
			continue
		}
		plan := planOf(t, wl)
		if !plan.Exchange {
			t.Errorf("%s: clamped pipeline not in exchange mode", wl.Name)
			continue
		}
		for _, sp := range plan.Stages {
			b := sp.Out
			if b.CoreW&(b.CoreW-1) != 0 || b.CoreH&(b.CoreH-1) != 0 {
				t.Errorf("%s/%s: non-pow2 core %dx%d", wl.Name, b.Name, b.CoreW, b.CoreH)
			}
			if 2*b.StripH > b.CoreW {
				t.Errorf("%s/%s: strips overlap (H=%d, core %d)", wl.Name, b.Name, b.StripH, b.CoreW)
			}
			if sp.Publish != b.HasHalo() {
				t.Errorf("%s/%s: publish=%v but HasHalo=%v", wl.Name, b.Name, sp.Publish, b.HasHalo())
			}
		}
	}
}

// TestFilterChainOnSimulator runs the halide filter-block library
// through the full stack (the edgedetect example's pipeline).
func TestFilterChainOnSimulator(t *testing.T) {
	blur := halide.SeparableGaussian("fb", nil, 1).ComputeRoot().LoadPGSM()
	grad := halide.SobelMag("fgd", blur).ComputeRoot().LoadPGSM()
	edges := halide.Threshold("fe", grad, 0.25)
	pipe := halide.NewPipeline("edge", edges).ClampStages()
	cfg := sim.TestTinyOneVault()
	runPipe(t, cfg, pipe, pixel.Synth(32, 16, 55), Opt)
}
