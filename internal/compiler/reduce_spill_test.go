package compiler

import (
	"testing"

	"ipim/internal/halide"
	"ipim/internal/pixel"
	"ipim/internal/sim"
)

// deepReducePipe builds an adversarial workload for the register
// allocator: the output multiplies two independent weighted-window
// reductions, so the first accumulator stays live across the second's
// entire FMac chain while the window loads compete for the same
// registers.
func deepReducePipe(pgsm bool) *halide.Pipeline {
	win := func(seed, n int) halide.Expr {
		return halide.Sum(n, n, func(rx, ry int) halide.Expr {
			w := float32((seed+ry*n+rx)%7-3) / 4
			return halide.Mul(halide.K(w), halide.In(rx-n/2, ry-n/2))
		})
	}
	out := halide.NewFunc("deepreduce").Define(
		halide.Add(halide.Mul(win(1, 5), win(2, 3)), halide.K(0.5)))
	if pgsm {
		out.LoadPGSM()
	}
	return halide.NewPipeline("deepreduce", out)
}

// TestReduceSpillingCorrectness forces the deep reduction chains
// through a pressured register file and pins bit-exactness against the
// reference interpreter (the TestSpillingCorrectness pattern, aimed at
// reduction lowering).
func TestReduceSpillingCorrectness(t *testing.T) {
	for _, tc := range []struct {
		name string
		rf   int
		pgsm bool
	}{
		{"rf12-pgsm", 12, true},
		{"rf8-min", 8, true},
		{"rf12-dram", 12, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := sim.TestTiny()
			cfg.DataRFEntries = tc.rf
			img := pixel.Synth(32, 16, 0xAB)
			pipe := deepReducePipe(tc.pgsm)
			art, err := Compile(&cfg, pipe, img.W, img.H, Opt)
			if err != nil {
				t.Fatal(err)
			}
			if art.Spills == 0 {
				t.Fatalf("expected spills with a %d-entry DataRF", tc.rf)
			}
			runPipe(t, cfg, pipe, img, Opt)
		})
	}
}

// TestReduceSpillMatchesUnspilled pins that a spilled schedule of the
// reduction computes the same pixels as an unpressured one: both runs
// are compared bit-exactly against the same reference.
func TestReduceSpillMatchesUnspilled(t *testing.T) {
	img := pixel.Synth(32, 16, 0xAC)
	pipe := deepReducePipe(true)

	small := sim.TestTiny()
	small.DataRFEntries = 8
	big := sim.TestTiny()
	big.DataRFEntries = 128

	artSmall, err := Compile(&small, pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}
	artBig, err := Compile(&big, pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}
	if artSmall.Spills == 0 {
		t.Fatal("8-entry DataRF did not spill the deep reduction")
	}
	if artBig.Spills != 0 {
		t.Fatalf("128-entry DataRF spilled (%d): test no longer contrasts schedules", artBig.Spills)
	}
	runPipe(t, small, pipe, img, Opt)
	runPipe(t, big, pipe, img, Opt)
}
