package compiler

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"ipim/internal/halide"
	"ipim/internal/sim"
)

// PipelineFingerprint returns a structural digest of a pipeline's
// algorithm that is independent of its tunable schedule. Two pipelines
// that compute the same function via the same stage structure hash
// equal even when their ipim_tile shapes or load_pgsm staging differ —
// exactly the equivalence the autotuner's results database needs, so
// that a schedule tuned for one request keys every later request for
// the same algorithm.
//
// Included: the expression DAG (ops, constants, coordinate transforms,
// producer references with compute_root materialization), output
// scaling, clamped-stage semantics, and the histogram shape. Excluded:
// func/pipeline names, TileW/TileH, and load_pgsm flags (the tuned
// dimensions).
func PipelineFingerprint(p *halide.Pipeline) uint64 {
	h := fnv.New64a()
	fp := &fingerprinter{w: h, ids: map[*halide.Func]int{}}
	fmt.Fprintf(h, "pipe|scale=%d/%d|clamp=%v|hist=%v/%d|",
		p.OutNum, p.OutDen, p.ClampedStages, p.Histogram, p.Bins)
	if p.Output != nil {
		fp.fun(p.Output)
	}
	return h.Sum64()
}

// fingerprinter assigns stable integer identities to Funcs in
// first-visit order so the digest depends only on DAG structure, not on
// pointer values or declaration names.
type fingerprinter struct {
	w   io.Writer
	ids map[*halide.Func]int
}

func (fp *fingerprinter) fun(f *halide.Func) {
	if id, ok := fp.ids[f]; ok {
		fmt.Fprintf(fp.w, "ref#%d|", id)
		return
	}
	id := len(fp.ids)
	fp.ids[f] = id
	fmt.Fprintf(fp.w, "func#%d|root=%v|", id, f.IsComputeRoot())
	fp.expr(f.E)
}

func (fp *fingerprinter) expr(e halide.Expr) {
	switch t := e.(type) {
	case halide.Const:
		// Hash the exact bit pattern: 1.0/3 and 0.333 are different
		// algorithms.
		fmt.Fprintf(fp.w, "k%08x|", math.Float32bits(t.V))
	case halide.Access:
		fmt.Fprintf(fp.w, "acc(%d,%d,%d)(%d,%d,%d)|",
			t.CX.Scale, t.CX.Offset, t.CX.Div, t.CY.Scale, t.CY.Offset, t.CY.Div)
		if t.Func == nil {
			fmt.Fprintf(fp.w, "in|")
		} else {
			fp.fun(t.Func)
		}
	case halide.Bin:
		fmt.Fprintf(fp.w, "bin%d(", t.Op)
		fp.expr(t.A)
		fp.expr(t.B)
		fmt.Fprintf(fp.w, ")|")
	case halide.Select:
		fmt.Fprintf(fp.w, "sel(")
		fp.expr(t.Cond)
		fp.expr(t.Then)
		fp.expr(t.Else)
		fmt.Fprintf(fp.w, ")|")
	case halide.Reduce:
		// Term order is semantic (FP accumulation order), so hash it.
		fmt.Fprintf(fp.w, "red%d(", len(t.Terms))
		for _, term := range t.Terms {
			fp.expr(term)
		}
		fmt.Fprintf(fp.w, ")|")
	case halide.Tab:
		fmt.Fprintf(fp.w, "tab(%d,%d,%d)(%d,%d,%d)[",
			t.CX.Scale, t.CX.Offset, t.CX.Div, t.CY.Scale, t.CY.Offset, t.CY.Div)
		for _, v := range t.Vals {
			fmt.Fprintf(fp.w, "%08x,", math.Float32bits(v))
		}
		fmt.Fprintf(fp.w, "]|")
	default:
		fmt.Fprintf(fp.w, "?%T|", e)
	}
}

// ConfigDigest hashes the machine configuration and compiler options a
// tuning result was measured under, excluding the DRAM page and
// scheduling policies — those are tuned dimensions carried inside each
// candidate, so results keyed by this digest remain addressable
// whichever policies the search selects. Any other config change (PE
// counts, timings, register file sizes, compiler baseline) yields a new
// digest and therefore a fresh tuning entry.
func ConfigDigest(cfg *sim.Config, opts Options) uint64 {
	c := *cfg
	c.Page, c.Sched = 0, 0
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v|%+v", c, opts)
	return h.Sum64()
}
