package compiler

import (
	"encoding/json"
	"fmt"
	"io"

	"ipim/internal/halide"
	"ipim/internal/isa"
	"ipim/internal/sim"
)

// Artifact serialization: a compiled kernel plus the layout metadata
// the host runtime needs (LoadInput / Execute / ReadOutput /
// ReadHistogram). This is the shippable form of an offloaded kernel —
// the VSM "accepts computation offloading from a host" (paper
// Sec. IV-E) and this file format is what the host would ship. Loaded
// artifacts run but cannot be recompiled (the expression IR is not
// serialized).

const artifactMagic = "ipim-artifact-v1"

// savedArtifact is the JSON envelope. Programs ride as the ISA binary
// codec's bytes (base64 in JSON).
type savedArtifact struct {
	Magic string
	Cfg   sim.Config
	Opts  Options

	// Pipeline metadata needed at run time.
	PipeName       string
	TileW, TileH   int
	OutNum, OutDen int
	Histogram      bool
	Bins           int
	ClampedStages  bool

	// Layout.
	ImgW, ImgH, OutW, OutH       int
	TilesX, TilesY, TilesPerPE   int
	NumPEs                       int
	Input, OutBuf                *BufPlan
	Consts                       []float32
	ConstBase, SpillBase         uint32
	HistLocal, HistPG, HistFinal uint32
	HistGlobal                   uint32
	Exchange                     bool

	Prog       []byte
	LeaderProg []byte
	Spills     int
}

// SaveArtifact writes the artifact in the shippable format.
func SaveArtifact(w io.Writer, art *Artifact) error {
	p := art.Plan
	sa := savedArtifact{
		Magic: artifactMagic,
		Cfg:   *p.Cfg, Opts: art.Opts,
		PipeName: p.Pipe.Name, TileW: p.Pipe.TileW, TileH: p.Pipe.TileH,
		OutNum: p.Pipe.OutNum, OutDen: p.Pipe.OutDen,
		Histogram: p.Pipe.Histogram, Bins: p.Pipe.Bins,
		ClampedStages: p.Pipe.ClampedStages,
		ImgW:          p.ImgW, ImgH: p.ImgH, OutW: p.OutW, OutH: p.OutH,
		TilesX: p.TilesX, TilesY: p.TilesY, TilesPerPE: p.TilesPerPE,
		NumPEs: p.NumPEs,
		Input:  p.Input, OutBuf: p.OutBuf,
		Consts: p.Consts, ConstBase: p.ConstBase, SpillBase: p.SpillBase,
		HistLocal: p.HistLocal, HistPG: p.HistPG, HistFinal: p.HistFinal,
		HistGlobal: p.HistGlobal,
		Exchange:   p.Exchange,
		Prog:       isa.EncodeProgram(art.Prog),
		Spills:     art.Spills,
	}
	if art.LeaderProg != nil {
		sa.LeaderProg = isa.EncodeProgram(art.LeaderProg)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&sa)
}

// Sanity caps for loaded artifacts. Artifacts arrive from outside the
// process (shipped kernels, network-facing tooling), so every quantity
// the runtime indexes or allocates with must be bounded and mutually
// consistent before the artifact is allowed near a machine.
const (
	maxArtifactDim    = 1 << 20 // image / output dimension cap
	maxArtifactPixels = 1 << 26 // matches the netpbm reader's cap
	maxArtifactSlot   = 1 << 28 // per-tile buffer slot bytes
	maxArtifactBins   = 1 << 16
	maxArtifactConsts = 1 << 16
	maxArtifactVaults = 1 << 16
)

// validateBuf checks the geometric invariants LoadInput/ReadOutput
// index with: sane intervals, positive domain scales (they divide),
// and a slot large enough for the stored region.
func validateBuf(b *BufPlan, tilesPerPE int, what string) error {
	if b == nil {
		return fmt.Errorf("compiler: artifact has no %s buffer", what)
	}
	if b.X.Lo > b.X.Hi || b.Y.Lo > b.Y.Hi {
		return fmt.Errorf("compiler: artifact %s buffer has empty region x%v y%v", what, b.X, b.Y)
	}
	if b.SigmaX.Num < 1 || b.SigmaX.Den < 1 || b.SigmaY.Num < 1 || b.SigmaY.Den < 1 {
		return fmt.Errorf("compiler: artifact %s buffer has invalid scales %v %v", what, b.SigmaX, b.SigmaY)
	}
	w, h := int64(b.X.Len()), int64(b.Y.Len())
	need := w * h * 4
	if need > maxArtifactSlot || int64(b.Slot) > maxArtifactSlot {
		return fmt.Errorf("compiler: artifact %s buffer region %dx%d too large", what, w, h)
	}
	if int64(b.Slot) < need {
		return fmt.Errorf("compiler: artifact %s buffer slot %d smaller than its %dx%d region (%d bytes)",
			what, b.Slot, w, h, need)
	}
	if int64(b.Base)+int64(tilesPerPE)*int64(b.Slot) > int64(maxArtifactSlot)*4 {
		return fmt.Errorf("compiler: artifact %s buffer layout exceeds the bank address space", what)
	}
	return nil
}

// validate rejects corrupt or hostile saved artifacts before any of
// their fields reach allocation sizes or slice indices.
func (sa *savedArtifact) validate() error {
	if err := sa.Cfg.Validate(); err != nil {
		return fmt.Errorf("compiler: artifact config: %w", err)
	}
	if sa.Cfg.TotalVaults() > maxArtifactVaults {
		return fmt.Errorf("compiler: artifact config has %d vaults (cap %d)", sa.Cfg.TotalVaults(), maxArtifactVaults)
	}
	dims := []struct {
		v    int
		name string
	}{
		{sa.ImgW, "ImgW"}, {sa.ImgH, "ImgH"}, {sa.OutW, "OutW"}, {sa.OutH, "OutH"},
		{sa.TileW, "TileW"}, {sa.TileH, "TileH"},
		{sa.TilesX, "TilesX"}, {sa.TilesY, "TilesY"}, {sa.TilesPerPE, "TilesPerPE"},
		{sa.NumPEs, "NumPEs"}, {sa.OutNum, "OutNum"}, {sa.OutDen, "OutDen"},
	}
	for _, d := range dims {
		if d.v < 1 || d.v > maxArtifactDim {
			return fmt.Errorf("compiler: artifact %s = %d out of range [1, %d]", d.name, d.v, maxArtifactDim)
		}
	}
	if int64(sa.ImgW)*int64(sa.ImgH) > maxArtifactPixels || int64(sa.OutW)*int64(sa.OutH) > maxArtifactPixels {
		return fmt.Errorf("compiler: artifact image %dx%d → %dx%d exceeds the %d-pixel limit",
			sa.ImgW, sa.ImgH, sa.OutW, sa.OutH, maxArtifactPixels)
	}
	if sa.NumPEs > sa.Cfg.TotalPEs() {
		return fmt.Errorf("compiler: artifact wants %d PEs but its config has %d", sa.NumPEs, sa.Cfg.TotalPEs())
	}
	if int64(sa.TilesX)*int64(sa.TilesY) != int64(sa.TilesPerPE)*int64(sa.NumPEs) {
		return fmt.Errorf("compiler: artifact tile distribution inconsistent: %dx%d tiles vs %d PEs x %d tiles",
			sa.TilesX, sa.TilesY, sa.NumPEs, sa.TilesPerPE)
	}
	// ReadOutput writes every tile at TileOrigin + [0,TileW)x[0,TileH):
	// the tile grid must cover the output exactly.
	if int64(sa.TilesX)*int64(sa.TileW) != int64(sa.OutW) || int64(sa.TilesY)*int64(sa.TileH) != int64(sa.OutH) {
		return fmt.Errorf("compiler: artifact tile grid %dx%d of %dx%d tiles does not cover output %dx%d",
			sa.TilesX, sa.TilesY, sa.TileW, sa.TileH, sa.OutW, sa.OutH)
	}
	if len(sa.Consts) > maxArtifactConsts {
		return fmt.Errorf("compiler: artifact constant pool too large (%d)", len(sa.Consts))
	}
	if err := validateBuf(sa.Input, sa.TilesPerPE, "input"); err != nil {
		return err
	}
	if sa.Histogram {
		if sa.Bins < 1 || sa.Bins > maxArtifactBins {
			return fmt.Errorf("compiler: artifact histogram bins %d out of range [1, %d]", sa.Bins, maxArtifactBins)
		}
		return nil
	}
	if err := validateBuf(sa.OutBuf, sa.TilesPerPE, "output"); err != nil {
		return err
	}
	// ReadOutput indexes the output slot at tile-local [0,TileW)x
	// [0,TileH); the stored region must cover it.
	ob := sa.OutBuf
	if ob.X.Lo > 0 || ob.X.Hi < sa.TileW-1 || ob.Y.Lo > 0 || ob.Y.Hi < sa.TileH-1 {
		return fmt.Errorf("compiler: artifact output region x%v y%v does not cover the %dx%d tile",
			ob.X, ob.Y, sa.TileW, sa.TileH)
	}
	return nil
}

// LoadArtifact reads a saved artifact back into runnable form,
// validating it first: artifacts are the shippable offload format and
// may arrive truncated or hostile, so no field reaches an allocation
// size or slice index unchecked.
func LoadArtifact(r io.Reader) (*Artifact, error) {
	var sa savedArtifact
	if err := json.NewDecoder(r).Decode(&sa); err != nil {
		return nil, fmt.Errorf("compiler: decode artifact: %w", err)
	}
	if sa.Magic != artifactMagic {
		return nil, fmt.Errorf("compiler: not an ipim artifact (magic %q)", sa.Magic)
	}
	if err := sa.validate(); err != nil {
		return nil, err
	}
	prog, err := isa.DecodeProgram(sa.Prog)
	if err != nil {
		return nil, fmt.Errorf("compiler: artifact program: %w", err)
	}
	cfg := sa.Cfg
	pipe := &halide.Pipeline{
		Name: sa.PipeName, TileW: sa.TileW, TileH: sa.TileH,
		OutNum: sa.OutNum, OutDen: sa.OutDen,
		Histogram: sa.Histogram, Bins: sa.Bins,
		ClampedStages: sa.ClampedStages,
	}
	plan := &Plan{
		Cfg: &cfg, Pipe: pipe,
		ImgW: sa.ImgW, ImgH: sa.ImgH, OutW: sa.OutW, OutH: sa.OutH,
		TilesX: sa.TilesX, TilesY: sa.TilesY, TilesPerPE: sa.TilesPerPE,
		NumPEs: sa.NumPEs,
		Input:  sa.Input, OutBuf: sa.OutBuf,
		Consts: sa.Consts, ConstBase: sa.ConstBase, SpillBase: sa.SpillBase,
		HistLocal: sa.HistLocal, HistPG: sa.HistPG, HistFinal: sa.HistFinal,
		HistGlobal: sa.HistGlobal,
		Exchange:   sa.Exchange,
	}
	art := &Artifact{Plan: plan, Prog: prog, Opts: sa.Opts, Spills: sa.Spills}
	if len(sa.LeaderProg) > 0 {
		if art.LeaderProg, err = isa.DecodeProgram(sa.LeaderProg); err != nil {
			return nil, fmt.Errorf("compiler: artifact leader program: %w", err)
		}
	}
	return art, nil
}
