package compiler

import (
	"encoding/json"
	"fmt"
	"io"

	"ipim/internal/halide"
	"ipim/internal/isa"
	"ipim/internal/sim"
)

// Artifact serialization: a compiled kernel plus the layout metadata
// the host runtime needs (LoadInput / Execute / ReadOutput /
// ReadHistogram). This is the shippable form of an offloaded kernel —
// the VSM "accepts computation offloading from a host" (paper
// Sec. IV-E) and this file format is what the host would ship. Loaded
// artifacts run but cannot be recompiled (the expression IR is not
// serialized).

const artifactMagic = "ipim-artifact-v1"

// savedArtifact is the JSON envelope. Programs ride as the ISA binary
// codec's bytes (base64 in JSON).
type savedArtifact struct {
	Magic string
	Cfg   sim.Config
	Opts  Options

	// Pipeline metadata needed at run time.
	PipeName       string
	TileW, TileH   int
	OutNum, OutDen int
	Histogram      bool
	Bins           int
	ClampedStages  bool

	// Layout.
	ImgW, ImgH, OutW, OutH       int
	TilesX, TilesY, TilesPerPE   int
	NumPEs                       int
	Input, OutBuf                *BufPlan
	Consts                       []float32
	ConstBase, SpillBase         uint32
	HistLocal, HistPG, HistFinal uint32
	HistGlobal                   uint32
	Exchange                     bool

	Prog       []byte
	LeaderProg []byte
	Spills     int
}

// SaveArtifact writes the artifact in the shippable format.
func SaveArtifact(w io.Writer, art *Artifact) error {
	p := art.Plan
	sa := savedArtifact{
		Magic: artifactMagic,
		Cfg:   *p.Cfg, Opts: art.Opts,
		PipeName: p.Pipe.Name, TileW: p.Pipe.TileW, TileH: p.Pipe.TileH,
		OutNum: p.Pipe.OutNum, OutDen: p.Pipe.OutDen,
		Histogram: p.Pipe.Histogram, Bins: p.Pipe.Bins,
		ClampedStages: p.Pipe.ClampedStages,
		ImgW:          p.ImgW, ImgH: p.ImgH, OutW: p.OutW, OutH: p.OutH,
		TilesX: p.TilesX, TilesY: p.TilesY, TilesPerPE: p.TilesPerPE,
		NumPEs: p.NumPEs,
		Input:  p.Input, OutBuf: p.OutBuf,
		Consts: p.Consts, ConstBase: p.ConstBase, SpillBase: p.SpillBase,
		HistLocal: p.HistLocal, HistPG: p.HistPG, HistFinal: p.HistFinal,
		HistGlobal: p.HistGlobal,
		Exchange:   p.Exchange,
		Prog:       isa.EncodeProgram(art.Prog),
		Spills:     art.Spills,
	}
	if art.LeaderProg != nil {
		sa.LeaderProg = isa.EncodeProgram(art.LeaderProg)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&sa)
}

// LoadArtifact reads a saved artifact back into runnable form.
func LoadArtifact(r io.Reader) (*Artifact, error) {
	var sa savedArtifact
	if err := json.NewDecoder(r).Decode(&sa); err != nil {
		return nil, fmt.Errorf("compiler: decode artifact: %w", err)
	}
	if sa.Magic != artifactMagic {
		return nil, fmt.Errorf("compiler: not an ipim artifact (magic %q)", sa.Magic)
	}
	prog, err := isa.DecodeProgram(sa.Prog)
	if err != nil {
		return nil, fmt.Errorf("compiler: artifact program: %w", err)
	}
	cfg := sa.Cfg
	pipe := &halide.Pipeline{
		Name: sa.PipeName, TileW: sa.TileW, TileH: sa.TileH,
		OutNum: sa.OutNum, OutDen: sa.OutDen,
		Histogram: sa.Histogram, Bins: sa.Bins,
		ClampedStages: sa.ClampedStages,
	}
	plan := &Plan{
		Cfg: &cfg, Pipe: pipe,
		ImgW: sa.ImgW, ImgH: sa.ImgH, OutW: sa.OutW, OutH: sa.OutH,
		TilesX: sa.TilesX, TilesY: sa.TilesY, TilesPerPE: sa.TilesPerPE,
		NumPEs: sa.NumPEs,
		Input:  sa.Input, OutBuf: sa.OutBuf,
		Consts: sa.Consts, ConstBase: sa.ConstBase, SpillBase: sa.SpillBase,
		HistLocal: sa.HistLocal, HistPG: sa.HistPG, HistFinal: sa.HistFinal,
		HistGlobal: sa.HistGlobal,
		Exchange:   sa.Exchange,
	}
	art := &Artifact{Plan: plan, Prog: prog, Opts: sa.Opts, Spills: sa.Spills}
	if len(sa.LeaderProg) > 0 {
		if art.LeaderProg, err = isa.DecodeProgram(sa.LeaderProg); err != nil {
			return nil, fmt.Errorf("compiler: artifact leader program: %w", err)
		}
	}
	return art, nil
}
