package compiler

import (
	"fmt"
	"math/rand"
	"testing"

	"ipim/internal/cube"
	"ipim/internal/halide"
	"ipim/internal/pixel"
	"ipim/internal/sim"
)

// Random-pipeline property test: generate arbitrary (but well-formed)
// pipelines — random expression trees over random stencil offsets,
// random stage materialization, random load_pgsm schedules, random
// compiler options — compile them, run them on the simulator, and
// require bit-exact agreement with the reference interpreter. This is
// the strongest end-to-end check in the suite: it exercises bound
// inference, layout, lowering, register allocation (including spills on
// small register files), reordering and memory-order enforcement
// against arbitrary programs.

type pipeGen struct {
	r      *rand.Rand
	funcs  []*halide.Func // materialized producers available for reads
	nextID int
}

// expr generates a random expression of bounded depth reading the
// input and previously materialized stages.
func (g *pipeGen) expr(depth int) halide.Expr {
	if depth <= 0 || g.r.Intn(3) == 0 {
		// Leaf: constant or access.
		if g.r.Intn(4) == 0 {
			return halide.K(float32(g.r.Intn(8)) * 0.25)
		}
		dx, dy := g.r.Intn(5)-2, g.r.Intn(5)-2
		if len(g.funcs) > 0 && g.r.Intn(2) == 0 {
			f := g.funcs[g.r.Intn(len(g.funcs))]
			return f.At(dx, dy)
		}
		return halide.In(dx, dy)
	}
	ops := []func(a, b halide.Expr) halide.Expr{
		halide.Add, halide.Sub, halide.Mul, halide.Min, halide.Max,
	}
	switch g.r.Intn(8) {
	case 0:
		return halide.Sel(halide.LT(g.expr(depth-1), halide.K(0.5)),
			g.expr(depth-1), g.expr(depth-1))
	default:
		op := ops[g.r.Intn(len(ops))]
		return op(g.expr(depth-1), g.expr(depth-1))
	}
}

// pipeline generates a random multi-stage pipeline. Clamped (exchange)
// pipelines chain materialized stencil stages; unclamped ones inline
// everything into a single kernel.
func (g *pipeGen) pipeline(clamped bool) *halide.Pipeline {
	stages := 1
	if clamped {
		stages = 1 + g.r.Intn(3)
	}
	for i := 0; i < stages; i++ {
		e := g.expr(2 + g.r.Intn(2))
		// Anchor terms guarantee a connected pipeline that reads its
		// input: stage 0 always reads the input, and each later stage
		// reads its predecessor.
		if i == 0 {
			e = halide.Add(e, halide.Mul(halide.K(0.125), halide.In(0, 0)))
		} else {
			prev := g.funcs[len(g.funcs)-1]
			e = halide.Add(e, halide.Mul(halide.K(0.25), prev.At(0, 0)))
		}
		f := halide.NewFunc(fmt.Sprintf("fz%d", g.nextID)).Define(e)
		g.nextID++
		if i < stages-1 {
			f.ComputeRoot()
		}
		if g.r.Intn(2) == 0 {
			f.LoadPGSM()
		}
		g.funcs = append(g.funcs, f)
	}
	out := g.funcs[len(g.funcs)-1]
	p := halide.NewPipeline(fmt.Sprintf("fuzz%d", g.nextID), out)
	if clamped {
		p.ClampStages()
	}
	return p
}

func runFuzzCase(t *testing.T, seed int64) {
	r := rand.New(rand.NewSource(seed))
	clamped := r.Intn(2) == 0
	g := &pipeGen{r: r}
	pipe := g.pipeline(clamped)

	cfg := sim.TestTiny()
	if clamped {
		cfg = sim.TestTinyOneVault()
	}
	// Occasionally shrink the register file to force spills, and vary
	// the compiler options.
	if r.Intn(3) == 0 {
		cfg.DataRFEntries = 12 + r.Intn(20)
	}
	if r.Intn(4) == 0 {
		cfg.PGSMBytes = 512 << uint(r.Intn(3))
	}
	allOpts := []Options{Opt, Baseline1, Baseline2, Baseline3, Baseline4}
	opts := allOpts[r.Intn(len(allOpts))]

	img := pixel.Synth(32, 16, uint64(seed)*7+1)
	art, err := Compile(&cfg, pipe, img.W, img.H, opts)
	if err != nil {
		t.Fatalf("seed %d: compile: %v", seed, err)
	}
	m, err := cube.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadInput(m, art, img); err != nil {
		t.Fatalf("seed %d: load: %v", seed, err)
	}
	if _, err := Execute(m, art); err != nil {
		t.Fatalf("seed %d: run: %v", seed, err)
	}
	got, err := ReadOutput(m, art)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pipe.Reference(img)
	if err != nil {
		t.Fatalf("seed %d: reference: %v", seed, err)
	}
	if d := pixel.MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("seed %d (clamped=%v, opts=%s, rf=%d, pgsm=%d): diff %g",
			seed, clamped, opts.Name(), cfg.DataRFEntries, cfg.PGSMBytes, d)
	}
}

func TestFuzzRandomPipelines(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	for seed := int64(0); seed < int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runFuzzCase(t, seed)
		})
	}
}
