package compiler

import (
	"encoding/binary"
	"fmt"
	"math"

	"ipim/internal/cube"
	"ipim/internal/pixel"
)

// Host-side data movement (paper Sec. VI: iPIM is a standalone
// accelerator; the host loads inputs and constant pools, launches the
// kernels, and reads results back).

// peCoords maps a machine-global PE index to (cube, vault, pg, pe).
func (p *Plan) peCoords(g int) (c, v, pg, pe int) {
	perVault := p.Cfg.PEsPerVault()
	vaultIdx := g / perVault
	local := g % perVault
	return vaultIdx / p.Cfg.VaultsPerCube, vaultIdx % p.Cfg.VaultsPerCube,
		local / p.Cfg.PEsPerPG, local % p.Cfg.PEsPerPG
}

// LoadInput writes the constant pool and the halo-extended input tiles
// into every participating PE bank, with clamp-to-edge replication at
// the image boundary.
func LoadInput(m *cube.Machine, art *Artifact, img *pixel.Image) error {
	p := art.Plan
	if img.W != p.ImgW || img.H != p.ImgH {
		return fmt.Errorf("compiler: image %dx%d does not match plan %dx%d", img.W, img.H, p.ImgW, p.ImgH)
	}
	// Constant pool, broadcast across lanes.
	pool := make([]byte, 16*len(p.Consts))
	for i, v := range p.Consts {
		for l := 0; l < 4; l++ {
			binary.LittleEndian.PutUint32(pool[16*i+4*l:], math.Float32bits(v))
		}
	}
	in := p.Input
	rowW := in.Width()
	tileBytes := make([]byte, in.Slot)
	for g := 0; g < p.NumPEs; g++ {
		c, v, pg, pe := p.peCoords(g)
		if len(pool) > 0 {
			if err := m.WriteBank(c, v, pg, pe, p.ConstBase, pool); err != nil {
				return err
			}
		}
		for k := 0; k < p.TilesPerPE; k++ {
			t := p.TileOf(g, k)
			ox, oy := p.TileOrigin(t)
			// Input-domain tile origin.
			ix := ox * in.SigmaX.Num / in.SigmaX.Den
			iy := oy * in.SigmaY.Num / in.SigmaY.Den
			for ly := in.Y.Lo; ly <= in.Y.Hi; ly++ {
				for lx := in.X.Lo; lx <= in.X.Hi; lx++ {
					val := img.At(ix+lx, iy+ly) // clamp at the edges
					off := ((ly-in.Y.Lo)*rowW + (lx - in.X.Lo)) * 4
					binary.LittleEndian.PutUint32(tileBytes[off:], math.Float32bits(val))
				}
			}
			addr := in.Base + uint32(k)*in.Slot
			if err := m.WriteBank(c, v, pg, pe, addr, tileBytes); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadOutput gathers the output image from the banks after a run.
func ReadOutput(m *cube.Machine, art *Artifact) (*pixel.Image, error) {
	p := art.Plan
	if p.Pipe.Histogram {
		return nil, fmt.Errorf("compiler: use ReadHistogram for histogram pipelines")
	}
	out := p.OutBuf
	if out == nil {
		return nil, fmt.Errorf("compiler: plan has no output buffer")
	}
	img := pixel.New(p.OutW, p.OutH)
	tw, th := p.Pipe.TileW, p.Pipe.TileH
	rowW := out.Width()
	for g := 0; g < p.NumPEs; g++ {
		c, v, pg, pe := p.peCoords(g)
		for k := 0; k < p.TilesPerPE; k++ {
			t := p.TileOf(g, k)
			ox, oy := p.TileOrigin(t)
			addr := out.Base + uint32(k)*out.Slot
			data, err := m.ReadBank(c, v, pg, pe, addr, int(out.Slot))
			if err != nil {
				return nil, err
			}
			for y := 0; y < th; y++ {
				for x := 0; x < tw; x++ {
					off := ((y-out.Y.Lo)*rowW + (x - out.X.Lo)) * 4
					bits := binary.LittleEndian.Uint32(data[off:])
					img.Set(ox+x, oy+y, math.Float32frombits(bits))
				}
			}
		}
	}
	return img, nil
}

// ReadHistogram gathers the histogram after a run. When the artifact
// carries a leader program, the machine-global total was assembled on
// the accelerator (vault 0's PE(0,0), via req) and is read directly;
// otherwise the host sums the per-vault totals.
func ReadHistogram(m *cube.Machine, art *Artifact) ([]int32, error) {
	p := art.Plan
	if !p.Pipe.Histogram {
		return nil, fmt.Errorf("compiler: %s is not a histogram pipeline", p.Pipe.Name)
	}
	bins := make([]int32, p.Pipe.Bins)
	if art.LeaderProg != nil {
		data, err := m.ReadBank(0, 0, 0, 0, p.HistGlobal, 4*p.Pipe.Bins)
		if err != nil {
			return nil, err
		}
		for i := range bins {
			bins[i] = int32(binary.LittleEndian.Uint32(data[4*i:]))
		}
		return bins, nil
	}
	for c := 0; c < p.Cfg.Cubes; c++ {
		for v := 0; v < p.Cfg.VaultsPerCube; v++ {
			data, err := m.ReadBank(c, v, 0, 0, p.HistFinal, 4*p.Pipe.Bins)
			if err != nil {
				return nil, err
			}
			for i := range bins {
				bins[i] += int32(binary.LittleEndian.Uint32(data[4*i:]))
			}
		}
	}
	return bins, nil
}

// RunOnMachine is the convenience end-to-end path: load, execute the
// same program on every vault, gather.
func RunOnMachine(m *cube.Machine, art *Artifact, img *pixel.Image) (*pixel.Image, error) {
	if err := LoadInput(m, art, img); err != nil {
		return nil, err
	}
	if _, err := Execute(m, art); err != nil {
		return nil, err
	}
	return ReadOutput(m, art)
}
