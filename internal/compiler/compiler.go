package compiler

import (
	"context"
	"fmt"

	"ipim/internal/halide"
	"ipim/internal/isa"
	"ipim/internal/sim"
)

// Machineish is the execution surface Execute needs (satisfied by
// *cube.Machine; an interface avoids an import cycle in tests).
type Machineish interface {
	RunSame(p *isa.Program) (sim.Stats, error)
	Run(programs map[[2]int]*isa.Program) (sim.Stats, error)
}

// ContextMachineish is the cancellable execution surface ExecuteContext
// needs (also satisfied by *cube.Machine).
type ContextMachineish interface {
	RunSameContext(ctx context.Context, p *isa.Program) (sim.Stats, error)
	RunContext(ctx context.Context, programs map[[2]int]*isa.Program) (sim.Stats, error)
}

type simStats = sim.Stats

// Artifact is a compiled pipeline: the executable program (identical
// for every vault — SPMD over the tile distribution) plus the plan the
// host loader uses to place data.
type Artifact struct {
	Plan *Plan
	Prog *isa.Program
	// LeaderProg, when non-nil, replaces Prog on vault (0,0): the
	// leader variant carries the cross-vault reduction phase of
	// multi-vault histogram pipelines (req-based, paper Sec. IV-D).
	LeaderProg *isa.Program
	Opts       Options
	Spills     int
}

// Compile maps a pipeline onto the machine configuration for a given
// input image size, applying the selected backend optimizations.
func Compile(cfg *sim.Config, pipe *halide.Pipeline, imgW, imgH int, opts Options) (*Artifact, error) {
	plan, err := NewPlan(cfg, pipe, imgW, imgH)
	if err != nil {
		return nil, err
	}
	finish := func(mod *module) (*isa.Program, int, error) {
		spills, err := Allocate(mod, plan, opts)
		if err != nil {
			return nil, 0, err
		}
		Reorder(mod, cfg, opts)
		prog, err := mod.emit()
		if err != nil {
			return nil, 0, err
		}
		if err := prog.Validate(cfg.DataRFEntries, cfg.AddrRFEntries, cfg.CtrlRFEntries); err != nil {
			return nil, 0, fmt.Errorf("compiler: generated program invalid: %w", err)
		}
		return prog, spills, nil
	}
	var mod *module
	if pipe.Histogram {
		mod, err = lowerHistogram(plan)
	} else {
		mod, err = Lower(plan)
	}
	if err != nil {
		return nil, err
	}
	prog, spills, err := finish(mod)
	if err != nil {
		return nil, err
	}
	art := &Artifact{Plan: plan, Prog: prog, Opts: opts, Spills: spills}
	if pipe.Histogram && cfg.TotalVaults() > 1 {
		lmod, err := lowerHistogramVariant(plan, true)
		if err != nil {
			return nil, err
		}
		if art.LeaderProg, _, err = finish(lmod); err != nil {
			return nil, err
		}
	}
	return art, nil
}

// Execute runs a compiled artifact on the machine: the base program on
// every vault, with the leader variant (when present) on vault (0,0).
func Execute(m Machineish, art *Artifact) (simStats, error) {
	if art.LeaderProg == nil {
		return m.RunSame(art.Prog)
	}
	return m.Run(artPrograms(art))
}

// ExecuteContext is Execute with cooperative cancellation and budget
// enforcement (the semantics of cube.Machine.RunContext).
func ExecuteContext(ctx context.Context, m ContextMachineish, art *Artifact) (simStats, error) {
	if art.LeaderProg == nil {
		return m.RunSameContext(ctx, art.Prog)
	}
	return m.RunContext(ctx, artPrograms(art))
}

// artPrograms expands an artifact with a leader variant into the
// per-vault program map.
func artPrograms(art *Artifact) map[[2]int]*isa.Program {
	progs := map[[2]int]*isa.Program{}
	for c := 0; c < art.Plan.Cfg.Cubes; c++ {
		for v := 0; v < art.Plan.Cfg.VaultsPerCube; v++ {
			progs[[2]int{c, v}] = art.Prog
		}
	}
	progs[[2]int{0, 0}] = art.LeaderProg
	return progs
}

// StaticCounts returns the static instruction mix of the artifact
// (used by analysis tools; the dynamic Fig. 11 mix comes from sim
// stats).
func (a *Artifact) StaticCounts() [isa.NumCategories]int {
	return a.Prog.CountByCategory()
}
