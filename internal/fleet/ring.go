// Package fleet is the distributed serving tier: a front-tier router
// (cmd/ipim-router) that spreads requests across a fleet of ipim-serve
// workers. Placement is a consistent-hash ring over the artifact key
// (workload, options, image geometry), so each worker's single-flight
// compile cache and autotune store see a stable shard of the keyspace,
// and a multi-frame stream sticks to one worker for its whole life.
// Workers announce themselves with heartbeats (internal/serve fleet
// worker mode); draining, degraded, recovering or dead workers fall
// out of the ring and only their keys rehash. Per-tenant QoS sits in
// front: a smooth-weighted-round-robin scheduler with bounded
// per-tenant queues admits requests into a global in-flight cap.
package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring with virtual nodes. It is not
// goroutine-safe; the Registry serializes access.
//
// Determinism contract: the point list is sorted by (hash, member), so
// a ring holding the same member set places every key identically no
// matter the order members were added in — routers restarted or
// rebuilt mid-flight agree on placement. Removing a member deletes
// only that member's points, so only keys that mapped to it move.
type Ring struct {
	vnodes  int
	points  []point // sorted by (hash, member)
	members map[string]bool
}

// point is one virtual node: a member replica's position on the ring.
type point struct {
	hash   uint64
	member string
}

// defaultVnodes balances placement evenness (spread ~±10% across a
// small fleet) against point-list size.
const defaultVnodes = 64

// NewRing builds an empty ring; vnodes <= 0 takes the default.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	return &Ring{vnodes: vnodes, members: map[string]bool{}}
}

// Add inserts a member's virtual nodes (no-op if present).
func (r *Ring) Add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash64(member + "#" + strconv.Itoa(i)), member})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].member < r.points[b].member
	})
}

// Remove deletes a member's virtual nodes (no-op if absent). The
// surviving points keep their positions: only the removed member's
// keys rehash.
func (r *Ring) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members lists the ring's members, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.members) }

// Lookup returns the member owning key: the first point clockwise from
// the key's hash. ok is false on an empty ring.
func (r *Ring) Lookup(key string) (member string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member, true
}

// LookupN returns up to n distinct members clockwise from the key —
// the owner first, then the failover order a router walks when the
// owner dies mid-request.
func (r *Ring) LookupN(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// hash64 is FNV-1a over the string — stable across processes and Go
// versions, which the cross-process placement contract requires.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
