package fleet

// The router proper: tenant admission, key derivation, forwarding with
// health-aware failover, and the stream relay.
//
// Failure model: a transport-level error talking to a worker marks it
// down and re-Picks — the ring without the dead member hands the key
// to its new owner, and by the simulator's determinism contract the
// replayed work is byte-identical, so failover is invisible to the
// client. Application-level errors (4xx/5xx a worker chose to send)
// are relayed as-is: they are deterministic and would recur anywhere.
//
// The stream relay buffers one whole output frame at a time: the
// client never sees a torn frame, and on a mid-stream worker death the
// router re-dispatches exactly the input frames whose outputs it has
// not yet relayed.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"ipim/internal/pixel"
)

// Config configures a Router. The zero value is usable.
type Config struct {
	// Vnodes is the consistent-hash ring's virtual-node count per
	// worker (default 64).
	Vnodes int
	// WorkerTTL expires workers whose heartbeats stop (default 3s);
	// SweepInterval is how often the expiry scan runs (default 500ms).
	WorkerTTL     time.Duration
	SweepInterval time.Duration
	// FailoverAttempts bounds how many non-progressing worker switches
	// one request survives before failing (default 2). A switch that
	// relayed at least one stream frame resets the budget.
	FailoverAttempts int
	// MaxInflight caps admitted requests fleet-wide (default 64);
	// TenantQueueCap bounds each tenant's admission queue (default 64);
	// Tenants configures the weighted tenants (a weight-1 "default" is
	// always present).
	MaxInflight    int
	TenantQueueCap int
	Tenants        []TenantConfig
	// MaxBodyBytes bounds request bodies (default 64 MiB; the router
	// buffers bodies so it can replay them on failover).
	MaxBodyBytes int64
	// Logger receives access and failover logs (default: discard).
	Logger *log.Logger
	// Client performs the worker-side requests (default: a client with
	// no overall timeout — streams are long-lived; worker liveness is
	// the heartbeat's job).
	Client *http.Client
}

func (c *Config) fillDefaults() {
	if c.WorkerTTL == 0 {
		c.WorkerTTL = 3 * time.Second
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = 500 * time.Millisecond
	}
	if c.FailoverAttempts == 0 {
		c.FailoverAttempts = 2
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Logger == nil {
		c.Logger = log.New(io.Discard, "", 0)
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
}

// Router is the fleet front tier. Create with New, mount it (it
// implements http.Handler), call Close on shutdown.
type Router struct {
	cfg     Config
	reg     *Registry
	sched   *Scheduler
	metrics *routerMetrics
	mux     *http.ServeMux

	stopSweep chan struct{}
	sweepDone chan struct{}
}

// New builds the registry, admission scheduler and routes, and starts
// the heartbeat-TTL sweeper.
func New(cfg Config) *Router {
	cfg.fillDefaults()
	rt := &Router{
		cfg:       cfg,
		reg:       NewRegistry(cfg.Vnodes, cfg.WorkerTTL),
		sched:     NewScheduler(cfg.MaxInflight, cfg.TenantQueueCap, cfg.Tenants),
		metrics:   newRouterMetrics(),
		mux:       http.NewServeMux(),
		stopSweep: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	rt.metrics.workerStates = rt.reg.stateCounts
	rt.metrics.readyCount = rt.reg.ReadyCount
	rt.metrics.tenantDepths = rt.sched.Depths
	rt.metrics.inflight = rt.sched.Inflight
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/readyz", rt.handleReadyz)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/fleet/register", rt.handleRegister)
	rt.mux.HandleFunc("/fleet/workers", rt.handleWorkers)
	rt.mux.HandleFunc("/", rt.route)
	go rt.sweeper()
	return rt
}

// Close stops the TTL sweeper.
func (rt *Router) Close() {
	select {
	case <-rt.stopSweep:
	default:
		close(rt.stopSweep)
		<-rt.sweepDone
	}
}

func (rt *Router) sweeper() {
	defer close(rt.sweepDone)
	tick := time.NewTicker(rt.cfg.SweepInterval)
	defer tick.Stop()
	for {
		select {
		case <-rt.stopSweep:
			return
		case <-tick.C:
			if n := rt.reg.Sweep(); n > 0 {
				rt.metrics.add(&rt.metrics.sweptDown, int64(n))
				rt.cfg.Logger.Printf("fleet: swept %d worker(s) whose heartbeats expired", n)
			}
		}
	}
}

// ServeHTTP wraps the routes with access logging and metrics.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	rt.mux.ServeHTTP(rec, r)
	rt.metrics.observeRequest(routeLabel(r.URL.Path), rec.status)
	rt.cfg.Logger.Printf("method=%s path=%s status=%d dur=%s remote=%s",
		r.Method, r.URL.Path, rec.status, time.Since(t0).Round(time.Microsecond), r.RemoteAddr)
}

// routeLabel bounds the metrics route cardinality.
func routeLabel(path string) string {
	switch path {
	case "/healthz", "/readyz", "/metrics", "/fleet/register", "/fleet/workers",
		"/v1/workloads", "/v1/process", "/v1/stream", "/v1/simb", "/v1/tune":
		return path
	}
	return "other"
}

// statusRecorder mirrors internal/serve's: status capture for metrics,
// with Unwrap so the stream relay can flush per frame.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.status = code
		sr.wrote = true
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	sr.wrote = true
	return sr.ResponseWriter.Write(b)
}

func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz: the router is ready when it can route, i.e. at least
// one worker is in the ring.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if rt.reg.ReadyCount() == 0 {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "no ready workers", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.metrics.write(w)
}

// handleRegister accepts one worker heartbeat:
// POST /fleet/register?addr=http://host:port&state=ready.
func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	addr := q.Get("addr")
	u, err := url.Parse(addr)
	if addr == "" || err != nil || u.Scheme == "" || u.Host == "" {
		http.Error(w, "addr must be the worker's absolute base URL", http.StatusBadRequest)
		return
	}
	state := q.Get("state")
	if state == "" {
		state = StateReady
	}
	if err := rt.reg.Beat(addr, state); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rt.metrics.add(&rt.metrics.beats, 1)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleWorkers lists the fleet as JSON (operator visibility).
func (rt *Router) handleWorkers(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"workers": rt.reg.Snapshot()})
}

// routingKey derives the placement key for a request. Artifact-shaped
// requests (/v1/process, /v1/stream) key on (workload, opts, geometry)
// — exactly the worker's compile-cache key, so one worker owns each
// artifact's compilation, cache entry and tuning. /v1/simb keys on the
// program hash. Anything else keys on its path (any worker can serve
// it; the ring just makes the choice stable).
func (rt *Router) routingKey(r *http.Request, body []byte) string {
	q := r.URL.Query()
	switch r.URL.Path {
	case "/v1/process", "/v1/stream":
		opts := q.Get("opts")
		if opts == "" {
			opts = "opt"
		}
		if _, w, h, err := pixel.NetpbmDims(body); err == nil {
			return fmt.Sprintf("art|%s|%s|%dx%d", q.Get("workload"), opts, w, h)
		}
		return "art|" + q.Get("workload") + "|" + opts
	case "/v1/simb":
		sum := sha256.Sum256(body)
		return "simb|" + hex.EncodeToString(sum[:8])
	}
	return "meta|" + r.URL.Path
}

// route is the catch-all proxy: admit, key, forward with failover.
func (rt *Router) route(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	tenant := r.Header.Get("X-Ipim-Tenant")
	if err := rt.sched.Acquire(r.Context(), tenant); err != nil {
		if errors.Is(err, ErrTenantQueueFull) {
			rt.metrics.add(&rt.metrics.rejectedTenant, 1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		}
		http.Error(w, err.Error(), statusClientClosedRequest)
		return
	}
	defer rt.sched.Release()

	key := rt.routingKey(r, body)
	if r.URL.Path == "/v1/stream" && r.Method == http.MethodPost {
		rt.relayStream(w, r, body, key)
		return
	}
	rt.forwardOnce(w, r, body, key)
}

// statusClientClosedRequest mirrors internal/serve's 499.
const statusClientClosedRequest = 499

// forwardOnce proxies one buffered request to the key's owner,
// failing over on transport errors. Worker responses — success or
// error — are relayed verbatim plus an X-Ipim-Worker header.
func (rt *Router) forwardOnce(w http.ResponseWriter, r *http.Request, body []byte, key string) {
	for attempt := 0; ; attempt++ {
		addr, ok := rt.reg.Pick(key)
		if !ok {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "no ready workers", http.StatusServiceUnavailable)
			return
		}
		resp, err := rt.forward(r, addr, body)
		if err != nil {
			rt.reg.MarkDown(addr)
			rt.metrics.add(&rt.metrics.failovers, 1)
			rt.cfg.Logger.Printf("fleet: worker %s failed (%v), failing over", addr, err)
			if attempt >= rt.cfg.FailoverAttempts {
				http.Error(w, fmt.Sprintf("no worker could serve the request (last: %v)", err), http.StatusBadGateway)
				return
			}
			continue
		}
		defer resp.Body.Close()
		h := w.Header()
		for name, vals := range resp.Header {
			h[name] = vals
		}
		h.Set("X-Ipim-Worker", addr)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
}

// forward issues the worker-side copy of a request.
func (rt *Router) forward(r *http.Request, addr string, body []byte) (*http.Response, error) {
	u := addr + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for name, vals := range r.Header {
		req.Header[name] = vals
	}
	return rt.cfg.Client.Do(req)
}

// relayStream proxies /v1/stream with sticky placement and mid-stream
// failover: the stream's input frames go to the key's owner, output
// frames are relayed one whole frame at a time, and when the upstream
// dies after frame k the router re-dispatches input frames k..n-1 to
// the key's next owner. Determinism makes the spliced output
// byte-identical to an undisturbed stream.
func (rt *Router) relayStream(w http.ResponseWriter, r *http.Request, body []byte, key string) {
	frames, _, _, err := pixel.SplitPGMFrames(body, 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// frames are subslices of body, so the not-yet-relayed suffix
	// starting at input frame k is body[offsets[k]:].
	offsets := make([]int, len(frames))
	off := 0
	for i, f := range frames {
		offsets[i] = off
		off += len(f)
	}

	rc := http.NewResponseController(w)
	sent := 0 // output frames relayed to the client
	dispatches := 0
	failures := 0 // consecutive worker switches with no progress
	for sent < len(frames) {
		addr, ok := rt.reg.Pick(key)
		if !ok {
			rt.streamFail(w, sent, "no ready workers", http.StatusServiceUnavailable)
			return
		}
		resp, err := rt.forward(r, addr, body[offsets[sent]:])
		if err != nil {
			rt.reg.MarkDown(addr)
			rt.metrics.add(&rt.metrics.failovers, 1)
			rt.cfg.Logger.Printf("fleet: stream worker %s failed before responding (%v)", addr, err)
			if failures++; failures > rt.cfg.FailoverAttempts {
				rt.streamFail(w, sent, "no worker could serve the stream", http.StatusBadGateway)
				return
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			// A deterministic application-level rejection: relay it on a
			// fresh stream, abort a committed one.
			if sent > 0 {
				resp.Body.Close()
				panic(http.ErrAbortHandler)
			}
			defer resp.Body.Close()
			h := w.Header()
			for name, vals := range resp.Header {
				h[name] = vals
			}
			h.Set("X-Ipim-Worker", addr)
			w.WriteHeader(resp.StatusCode)
			io.Copy(w, resp.Body)
			return
		}
		if dispatches == 0 {
			h := w.Header()
			for name, vals := range resp.Header {
				h[name] = vals
			}
			h.Set("X-Ipim-Worker", addr)
			// The upstream count covers the suffix; the client gets the
			// whole stream.
			h.Set("X-Ipim-Stream-Frames", strconv.Itoa(len(frames)))
		}
		dispatches++
		progressed := false
		br := bufio.NewReader(resp.Body)
		for sent < len(frames) {
			frame, ferr := readPGMFrame(br)
			if ferr != nil {
				break // torn or short upstream: fail over below
			}
			if _, werr := w.Write(frame); werr != nil {
				resp.Body.Close()
				return // client went away
			}
			rc.Flush()
			sent++
			progressed = true
			rt.metrics.add(&rt.metrics.framesRelayed, 1)
		}
		resp.Body.Close()
		if sent < len(frames) {
			rt.reg.MarkDown(addr)
			rt.metrics.add(&rt.metrics.failovers, 1)
			rt.cfg.Logger.Printf("fleet: stream to %s died after %d/%d frame(s), failing over", addr, sent, len(frames))
			if progressed {
				failures = 0
			} else if failures++; failures > rt.cfg.FailoverAttempts {
				rt.streamFail(w, sent, "no worker could finish the stream", http.StatusBadGateway)
				return
			}
		}
	}
	rt.metrics.add(&rt.metrics.streams, 1)
}

// streamFail reports a stream that cannot continue: a clean error on a
// fresh stream, a torn connection on a committed one (the status line
// is gone; a short 200 body would be a lie).
func (rt *Router) streamFail(w http.ResponseWriter, sent int, msg string, code int) {
	if sent > 0 {
		panic(http.ErrAbortHandler)
	}
	w.Header().Set("Retry-After", "1")
	http.Error(w, msg, code)
}

// readPGMFrame reads one canonical binary PGM frame — the exact form
// the worker's encoder emits ("P5\n<w> <h>\n255\n" + w*h bytes) — and
// returns its verbatim bytes. io.EOF before the first byte means the
// upstream body ended cleanly.
func readPGMFrame(br *bufio.Reader) ([]byte, error) {
	l1, err := br.ReadString('\n')
	if err != nil {
		return nil, err
	}
	if l1 != "P5\n" {
		return nil, fmt.Errorf("fleet: upstream frame does not start with P5")
	}
	l2, err := br.ReadString('\n')
	if err != nil {
		return nil, err
	}
	var fw, fh int
	if _, err := fmt.Sscanf(l2, "%d %d", &fw, &fh); err != nil || fw <= 0 || fh <= 0 || fw*fh > 1<<30 {
		return nil, fmt.Errorf("fleet: bad upstream frame geometry %q", strings.TrimSpace(l2))
	}
	l3, err := br.ReadString('\n')
	if err != nil {
		return nil, err
	}
	if l3 != "255\n" {
		return nil, fmt.Errorf("fleet: bad upstream frame maxval %q", strings.TrimSpace(l3))
	}
	frame := make([]byte, 0, len(l1)+len(l2)+len(l3)+fw*fh)
	frame = append(frame, l1...)
	frame = append(frame, l2...)
	frame = append(frame, l3...)
	px := make([]byte, fw*fh)
	if _, err := io.ReadFull(br, px); err != nil {
		return nil, err
	}
	return append(frame, px...), nil
}
