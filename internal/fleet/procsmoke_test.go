package fleet

// Process-level fleet smoke: real ipim-router and ipim-serve binaries,
// one router fronting two workers, a Table II request and a 4-frame
// stream driven through the router with the stream's owning worker
// SIGKILLed mid-stream — the client still receives byte-identical
// frames, and the router's failover counter moves. This is the ci.sh
// fleet smoke slot; the in-process differential gate in fleet_test.go
// is the -race correctness gate.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ipim"
	"ipim/internal/serve"
)

// reservePort grabs an ephemeral port and releases it for a child
// process to bind. Mildly racy by nature; fine for a smoke test.
func reservePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}

// proc is a spawned binary plus the listen address scraped from its
// startup log line.
type proc struct {
	cmd  *exec.Cmd
	addr string
}

var listenRE = regexp.MustCompile(` on (127\.0\.0\.1:\d+)`)

// startProc launches a binary and waits for its "… on HOST:PORT" log
// line, echoing the rest of its stderr through t.Logf.
func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("%s: %s", filepath.Base(bin), line)
			if m := listenRE.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &proc{cmd: cmd, addr: addr}
	case <-time.After(30 * time.Second):
		t.Fatalf("%s never logged its listen address", bin)
		return nil
	}
}

func waitHTTP(t *testing.T, url string, want func(int, []byte) bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if want(resp.StatusCode, body) {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("%s never reached the wanted state", url)
}

func TestFleetProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real binaries; skipped in -short mode")
	}

	// Build both binaries once into the test's temp dir.
	bindir := t.TempDir()
	var wg sync.WaitGroup
	for _, name := range []string{"ipim-router", "ipim-serve"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cmd := exec.Command("go", "build", "-o", filepath.Join(bindir, name), "./cmd/"+name)
			cmd.Dir = "../.."
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Errorf("building %s: %v\n%s", name, err, out)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Reserve the worker ports up front so the stream key's owner is
	// known before anything starts: only the owner gets the chaos flag
	// that stalls its first stream (the surviving worker must relay the
	// spliced tail cleanly).
	ports := []int{reservePort(t), reservePort(t)}
	addrs := []string{
		fmt.Sprintf("http://127.0.0.1:%d", ports[0]),
		fmt.Sprintf("http://127.0.0.1:%d", ports[1]),
	}
	ring := NewRing(0)
	ring.Add(addrs[0])
	ring.Add(addrs[1])
	streamKey := "art|GaussianBlur|opt|32x16" // routingKey's shape for the stream below
	owner, _ := ring.Lookup(streamKey)

	router := startProc(t, filepath.Join(bindir, "ipim-router"),
		"-addr", "127.0.0.1:0", "-worker-ttl", "2s", "-sweep", "100ms")
	routerURL := "http://" + router.addr

	var victim *proc
	for i, a := range addrs {
		args := []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-config", "tiny", "-workers", "2",
			"-router", routerURL, "-heartbeat", "100ms",
		}
		if a == owner {
			args = append(args, "-chaos-stream-stall", "1")
		}
		p := startProc(t, filepath.Join(bindir, "ipim-serve"), args...)
		if a == owner {
			victim = p
		}
	}
	waitHTTP(t, routerURL+"/metrics", func(status int, body []byte) bool {
		return status == http.StatusOK && bytes.Contains(body, []byte("ipim_router_ready_workers 2"))
	})

	// In-process reference server: determinism makes its bytes the
	// ground truth for the fleet's.
	ref, err := serve.New(serve.Config{Machine: ipim.TinyConfig(), Workers: 2, QueueCap: 16, CacheCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(ref)
	t.Cleanup(refTS.Close)

	// Table II request through the router.
	frame := pgmFrames(t, 1)
	procURL := "/v1/process?workload=GaussianBlur"
	wantStatus, _, want := post(t, refTS.URL+procURL, frame, nil)
	gotStatus, _, got := post(t, routerURL+procURL, frame, map[string]string{"X-Ipim-Tenant": "smoke"})
	if wantStatus != http.StatusOK || gotStatus != http.StatusOK {
		t.Fatalf("process request: reference=%d fleet=%d: %s", wantStatus, gotStatus, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fleet process response differs from the reference server")
	}

	// The 4-frame stream. The owner stalls after relaying frame 1;
	// killing it mid-stream forces the router to splice frames 2-4 from
	// the survivor.
	streamBody := pgmFrames(t, 4)
	streamURL := "/v1/stream?workload=GaussianBlur"
	wantStatus, _, wantStream := post(t, refTS.URL+streamURL, streamBody, nil)
	if wantStatus != http.StatusOK {
		t.Fatalf("reference stream: status %d: %s", wantStatus, wantStream)
	}

	resp, err := http.Post(routerURL+streamURL, "application/octet-stream", bytes.NewReader(streamBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("fleet stream: status %d: %s", resp.StatusCode, body)
	}
	br := bufio.NewReader(resp.Body)
	first, err := readPGMFrame(br)
	if err != nil {
		t.Fatalf("reading the first streamed frame: %v", err)
	}
	if err := victim.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("killing the stalled owner: %v", err)
	}
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatalf("reading the spliced stream tail: %v", err)
	}
	gotStream := append(first, rest...)
	if !bytes.Equal(gotStream, wantStream) {
		t.Fatalf("stream with a mid-stream worker kill differs from the reference (%d vs %d bytes)",
			len(gotStream), len(wantStream))
	}

	waitHTTP(t, routerURL+"/metrics", func(status int, body []byte) bool {
		if status != http.StatusOK {
			return false
		}
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, "ipim_router_failovers_total ") {
				var v float64
				fmt.Sscanf(strings.TrimPrefix(line, "ipim_router_failovers_total "), "%g", &v)
				return v >= 1
			}
		}
		return false
	})
}
