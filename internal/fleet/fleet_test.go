package fleet

// Router/worker integration, in-process: real serve.Servers in fleet
// worker mode heartbeat into a real Router, requests flow through the
// proxy. The headline test is the differential gate ISSUE 10 pins: the
// same request set through the router to a 2-worker fleet returns
// byte-identical output to a single standalone server — including a
// stream whose owning worker aborts mid-flight.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ipim"
	"ipim/internal/pixel"
	"ipim/internal/serve"
)

// testFleet is one router plus n registered workers.
type testFleet struct {
	rt        *Router
	routerTS  *httptest.Server
	servers   []*serve.Server
	workerURL []string
}

// newWorker builds one serve.Server on a pre-bound listener so its
// advertise address is known before New starts the heartbeat.
func newWorker(t *testing.T, routerURL string, mutate func(*serve.Config)) (*serve.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := "http://" + ln.Addr().String()
	cfg := serve.Config{
		Machine:  ipim.TinyConfig(),
		Workers:  2,
		QueueCap: 16,
		CacheCap: 8,
	}
	if routerURL != "" {
		cfg.RouterURL = routerURL
		cfg.AdvertiseAddr = addr
		cfg.HeartbeatInterval = 25 * time.Millisecond
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := serve.New(cfg)
	if err != nil {
		ln.Close()
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(s)
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	t.Cleanup(ts.Close)
	return s, addr
}

// newTestFleet starts a router and n workers and waits until every
// worker has heartbeated into the ring.
func newTestFleet(t *testing.T, n int, mutateRouter func(*Config)) *testFleet {
	t.Helper()
	cfg := Config{WorkerTTL: time.Second, SweepInterval: 50 * time.Millisecond}
	if mutateRouter != nil {
		mutateRouter(&cfg)
	}
	rt := New(cfg)
	t.Cleanup(rt.Close)
	routerTS := httptest.NewServer(rt)
	t.Cleanup(routerTS.Close)

	f := &testFleet{rt: rt, routerTS: routerTS}
	for i := 0; i < n; i++ {
		s, addr := newWorker(t, routerTS.URL, nil)
		f.servers = append(f.servers, s)
		f.workerURL = append(f.workerURL, addr)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rt.reg.ReadyCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers registered", rt.reg.ReadyCount(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return f
}

// serverFor maps a worker address back to its serve.Server.
func (f *testFleet) serverFor(t *testing.T, addr string) *serve.Server {
	t.Helper()
	for i, u := range f.workerURL {
		if u == addr {
			return f.servers[i]
		}
	}
	t.Fatalf("no worker at %s (have %v)", addr, f.workerURL)
	return nil
}

// pgmFrames builds n concatenated 32x16 PGM frames, seeds 1..n.
func pgmFrames(t *testing.T, n int) []byte {
	t.Helper()
	var body []byte
	for seed := uint64(1); seed <= uint64(n); seed++ {
		var buf bytes.Buffer
		if err := ipim.WritePGM(&buf, ipim.Synth(32, 16, seed)); err != nil {
			t.Fatal(err)
		}
		body = append(body, buf.Bytes()...)
	}
	return body
}

// post issues one POST and returns status, headers and body.
func post(t *testing.T, url string, body []byte, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", url, err)
	}
	return resp.StatusCode, resp.Header, out
}

func scrapeRouterMetric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(text), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%g", &v)
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestFleetDifferentialGate: the acceptance gate. Every request of a
// mixed set — PGM and PPM process requests across workloads, a
// histogram reduction, and a 4-frame stream whose owning worker is
// rigged to abort its connection after 2 frames — comes back through
// the 2-worker fleet byte-identical to a single standalone server,
// and the injected crash shows up in ipim_router_failovers_total.
func TestFleetDifferentialGate(t *testing.T) {
	_, singleURL := newWorker(t, "", nil)
	f := newTestFleet(t, 2, nil)

	type request struct {
		name  string
		path  string
		query string
		body  []byte
	}
	var reqs []request
	for _, wl := range []string{"Brighten", "GaussianBlur", "Shift"} {
		reqs = append(reqs, request{wl, "/v1/process", "workload=" + wl, pgmFrames(t, 1)})
	}
	reqs = append(reqs, request{"Histogram", "/v1/process", "workload=Histogram", pgmFrames(t, 1)})
	var ppm bytes.Buffer
	if err := ipim.WritePPM(&ppm, ipim.Synth(32, 16, 4), ipim.Synth(32, 16, 5), ipim.Synth(32, 16, 6)); err != nil {
		t.Fatal(err)
	}
	reqs = append(reqs, request{"BrightenPPM", "/v1/process", "workload=Brighten", ppm.Bytes()})

	for _, rq := range reqs {
		url := "/" + strings.TrimPrefix(rq.path, "/") + "?" + rq.query
		wantStatus, _, want := post(t, singleURL+url, rq.body, nil)
		gotStatus, hdr, got := post(t, f.routerTS.URL+url, rq.body, map[string]string{"X-Ipim-Tenant": "anyone"})
		if wantStatus != http.StatusOK || gotStatus != wantStatus {
			t.Fatalf("%s: single=%d fleet=%d: %s", rq.name, wantStatus, gotStatus, got)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: fleet response differs from the standalone server", rq.name)
		}
		if hdr.Get("X-Ipim-Worker") == "" {
			t.Errorf("%s: router did not stamp X-Ipim-Worker", rq.name)
		}
	}

	// The stream leg, with a crash injected on the OWNER of the
	// stream's routing key: it aborts its connection after relaying 2
	// of 4 frames, and the router must splice the remainder from the
	// other worker without the client seeing anything but 4 perfect
	// frames.
	streamBody := pgmFrames(t, 4)
	key := "art|GaussianBlur|opt|32x16" // routingKey's shape for this request
	owner, ok := f.rt.reg.Pick(key)
	if !ok {
		t.Fatal("no owner for the stream key")
	}
	f.serverFor(t, owner).SetStreamChaos(2)

	streamURL := "/v1/stream?workload=GaussianBlur"
	wantStatus, _, want := post(t, singleURL+streamURL, streamBody, nil)
	if wantStatus != http.StatusOK {
		t.Fatalf("single stream: status %d: %s", wantStatus, want)
	}
	gotStatus, hdr, got := post(t, f.routerTS.URL+streamURL, streamBody, nil)
	if gotStatus != http.StatusOK {
		t.Fatalf("fleet stream: status %d: %s", gotStatus, got)
	}
	if hdr.Get("X-Ipim-Worker") != owner {
		t.Errorf("stream started on %s, want the key's owner %s", hdr.Get("X-Ipim-Worker"), owner)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("spliced stream differs from the undisturbed stream (%d vs %d bytes)", len(got), len(want))
	}
	if frames, _, _, err := pixel.SplitPGMFrames(got, 0); err != nil || len(frames) != 4 {
		t.Fatalf("fleet stream = %d frames (%v), want 4", len(frames), err)
	}
	if n := scrapeRouterMetric(t, f.routerTS.URL, "ipim_router_failovers_total"); n < 1 {
		t.Errorf("ipim_router_failovers_total = %g, want >= 1", n)
	}
}

// TestStreamStickyAcrossRequests: the same stream key keeps landing on
// the same worker no matter what other traffic runs in between.
func TestStreamStickyAcrossRequests(t *testing.T) {
	f := newTestFleet(t, 2, nil)
	streamBody := pgmFrames(t, 2)
	streamURL := f.routerTS.URL + "/v1/stream?workload=Brighten"

	_, hdr, body := post(t, streamURL, streamBody, nil)
	first := hdr.Get("X-Ipim-Worker")
	if first == "" {
		t.Fatalf("no worker header: %s", body)
	}
	for i := 0; i < 3; i++ {
		// Intervening traffic with different keys.
		for _, wl := range []string{"Shift", "Downsample", "GaussianBlur"} {
			post(t, f.routerTS.URL+"/v1/process?workload="+wl, pgmFrames(t, 1), nil)
		}
		_, hdr, _ := post(t, streamURL, streamBody, nil)
		if got := hdr.Get("X-Ipim-Worker"); got != first {
			t.Fatalf("round %d: stream moved from %s to %s with a stable fleet", i, first, got)
		}
	}
}

// TestFleetFailoverOnDeadWorker: a registered-then-vanished worker
// (connection refused) is marked down on first contact and its keys
// fail over transparently; the TTL sweep keeps it down.
func TestFleetFailoverOnDeadWorker(t *testing.T) {
	f := newTestFleet(t, 1, nil)
	// Hand-register a corpse: reserved a port, then closed it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	corpse := "http://" + ln.Addr().String()
	ln.Close()
	if err := f.rt.reg.Beat(corpse, StateReady); err != nil {
		t.Fatal(err)
	}

	// Drive enough distinct keys that some must land on the corpse.
	sawFailover := false
	for i := 0; i < 8; i++ {
		url := f.routerTS.URL + "/v1/process?workload=Brighten&max_cycles=" + fmt.Sprint(1000000+i)
		status, hdr, body := post(t, url, pgmFrames(t, 1), nil)
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, body)
		}
		if hdr.Get("X-Ipim-Worker") == corpse {
			t.Fatalf("request %d claims it was served by the dead worker", i)
		}
		if scrapeRouterMetric(t, f.routerTS.URL, "ipim_router_failovers_total") >= 1 {
			sawFailover = true
		}
	}
	// The corpse's keys all rehash to the live worker; whether any of
	// the 8 keys hashed to the corpse first is placement-dependent, so
	// force one: mark it ready again and hit its key directly.
	if !sawFailover {
		f.rt.reg.Beat(corpse, StateReady)
		post(t, f.routerTS.URL+"/v1/process?workload=Brighten", pgmFrames(t, 1), nil)
		post(t, f.routerTS.URL+"/v1/process?workload=GaussianBlur", pgmFrames(t, 1), nil)
		if scrapeRouterMetric(t, f.routerTS.URL, "ipim_router_failovers_total") < 1 {
			t.Skip("no key landed on the corpse; placement-dependent, covered by the differential gate")
		}
	}
}

// TestWorkerDrainLeavesRing: Shutdown's final heartbeat flips the
// worker to draining and pulls it from the ring before the pool stops.
func TestWorkerDrainLeavesRing(t *testing.T) {
	f := newTestFleet(t, 2, nil)
	if err := f.servers[0].Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.rt.reg.ReadyCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("ready count = %d after drain, want 1", f.rt.reg.ReadyCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, ws := range f.rt.reg.Snapshot() {
		if ws.Addr == f.workerURL[0] && ws.State != StateDraining {
			t.Fatalf("drained worker state = %s, want draining", ws.State)
		}
	}
	// Traffic keeps flowing via the survivor.
	status, hdr, body := post(t, f.routerTS.URL+"/v1/process?workload=Brighten", pgmFrames(t, 1), nil)
	if status != http.StatusOK {
		t.Fatalf("post-drain request: status %d: %s", status, body)
	}
	if got := hdr.Get("X-Ipim-Worker"); got != f.workerURL[1] {
		t.Fatalf("post-drain request served by %s, want the survivor %s", got, f.workerURL[1])
	}
}

// TestRegistrySweepExpiresSilentWorkers: unit-level TTL check.
func TestRegistrySweepExpiresSilentWorkers(t *testing.T) {
	g := NewRegistry(8, 30*time.Millisecond)
	if err := g.Beat("http://w0", StateReady); err != nil {
		t.Fatal(err)
	}
	if g.ReadyCount() != 1 {
		t.Fatal("beat did not join the ring")
	}
	if n := g.Sweep(); n != 0 {
		t.Fatalf("fresh worker swept (%d)", n)
	}
	time.Sleep(50 * time.Millisecond)
	if n := g.Sweep(); n != 1 {
		t.Fatalf("sweep took down %d workers, want 1", n)
	}
	if g.ReadyCount() != 0 {
		t.Fatal("swept worker still in the ring")
	}
	// A late beat resurrects it.
	if err := g.Beat("http://w0", StateReady); err != nil {
		t.Fatal(err)
	}
	if g.ReadyCount() != 1 {
		t.Fatal("resurrection beat did not rejoin the ring")
	}
}

// TestRouterReadyzAndWorkersEndpoint: the router reports not-ready
// with an empty ring and lists workers as they come and go.
func TestRouterReadyzAndWorkersEndpoint(t *testing.T) {
	rt := New(Config{WorkerTTL: time.Second, SweepInterval: 50 * time.Millisecond})
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty fleet /readyz = %d, want 503", resp.StatusCode)
	}
	status, _, body := post(t, ts.URL+"/v1/process?workload=Brighten", pgmFrames(t, 1), nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("empty fleet proxy = %d, want 503: %s", status, body)
	}

	if _, err := http.Post(ts.URL+"/fleet/register?addr=http://127.0.0.1:9&state=ready", "", nil); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz with a registered worker = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/fleet/workers")
	if err != nil {
		t.Fatal(err)
	}
	listing, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(listing), "127.0.0.1:9") {
		t.Fatalf("/fleet/workers missing the registered worker: %s", listing)
	}
	// Bad registrations are rejected.
	for _, q := range []string{"addr=not-a-url", "addr=http://x:1&state=wat", ""} {
		resp, err := http.Post(ts.URL+"/fleet/register?"+q, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("register?%s = %d, want 400", q, resp.StatusCode)
		}
	}
}
