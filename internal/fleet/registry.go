package fleet

// Worker registry: the router's view of the fleet. Workers push their
// state with heartbeats (POST /fleet/register); the registry folds
// those into the consistent-hash ring — only "ready" workers hold ring
// membership. Liveness is belt and braces: a TTL sweep expires workers
// whose beats stop arriving, and the proxy marks a worker down the
// moment a forward fails at the transport level, so failover does not
// wait out the TTL.

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Worker states, shared vocabulary with internal/serve's heartbeat.
// Only StateReady is in the ring.
const (
	StateReady    = "ready"
	StateBacklog  = "backlog" // replaying its checkpoint-journal backlog
	StateDegraded = "degraded"
	StateDraining = "draining"
	StateDown     = "down" // beats stopped, or a forward failed
)

// validStates guards the registration endpoint's state parameter.
var validStates = map[string]bool{
	StateReady: true, StateBacklog: true, StateDegraded: true, StateDraining: true,
}

// workerInfo is one worker's registry record.
type workerInfo struct {
	addr     string
	state    string
	lastBeat time.Time
}

// WorkerStatus is the exported snapshot of one worker (the
// /fleet/workers listing).
type WorkerStatus struct {
	Addr     string `json:"addr"`
	State    string `json:"state"`
	AgeMilli int64  `json:"last_beat_ms"` // ms since the last beat
}

// Registry tracks the fleet and owns the ring. Goroutine-safe.
type Registry struct {
	mu      sync.Mutex
	workers map[string]*workerInfo
	ring    *Ring
	ttl     time.Duration
}

// NewRegistry builds an empty registry. ttl bounds how stale a beat
// may be before the sweep declares the worker down; vnodes <= 0 takes
// the ring default.
func NewRegistry(vnodes int, ttl time.Duration) *Registry {
	return &Registry{
		workers: map[string]*workerInfo{},
		ring:    NewRing(vnodes),
		ttl:     ttl,
	}
}

// Beat records one heartbeat, adjusting ring membership on state
// transitions. Unknown states are rejected.
func (g *Registry) Beat(addr, state string) error {
	if !validStates[state] {
		return fmt.Errorf("fleet: unknown worker state %q", state)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[addr]
	if !ok {
		w = &workerInfo{addr: addr}
		g.workers[addr] = w
	}
	w.state = state
	w.lastBeat = time.Now()
	if state == StateReady {
		g.ring.Add(addr)
	} else {
		g.ring.Remove(addr)
	}
	return nil
}

// MarkDown takes a worker out of the ring immediately — the proxy
// calls it on a transport-level forward failure, so the very next
// Pick for the same key lands elsewhere. The worker's next heartbeat
// reinstates it.
func (g *Registry) MarkDown(addr string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w, ok := g.workers[addr]; ok {
		w.state = StateDown
	}
	g.ring.Remove(addr)
}

// Sweep expires workers whose last beat is older than the TTL.
// Returns how many it took down.
func (g *Registry) Sweep() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	cutoff := time.Now().Add(-g.ttl)
	for _, w := range g.workers {
		if w.state != StateDown && w.lastBeat.Before(cutoff) {
			w.state = StateDown
			g.ring.Remove(w.addr)
			n++
		}
	}
	return n
}

// Pick returns the ready worker owning key (consistent-hash), or
// ok=false when no worker is ready.
func (g *Registry) Pick(key string) (addr string, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ring.Lookup(key)
}

// PickN returns up to n distinct ready workers in the key's failover
// order (owner first).
func (g *Registry) PickN(key string, n int) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ring.LookupN(key, n)
}

// ReadyCount reports how many workers are in the ring.
func (g *Registry) ReadyCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ring.Len()
}

// Snapshot lists every known worker, sorted by address.
func (g *Registry) Snapshot() []WorkerStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]WorkerStatus, 0, len(g.workers))
	now := time.Now()
	for _, w := range g.workers {
		out = append(out, WorkerStatus{
			Addr:     w.addr,
			State:    w.state,
			AgeMilli: now.Sub(w.lastBeat).Milliseconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// stateCounts tallies workers by state for the metrics gauge.
func (g *Registry) stateCounts() map[string]int {
	g.mu.Lock()
	defer g.mu.Unlock()
	counts := map[string]int{}
	for _, w := range g.workers {
		counts[w.state]++
	}
	return counts
}
