package fleet

// Ring invariants the fleet's correctness hangs on: placement is a
// pure function of the member SET (insertion order invisible), and
// removing a member moves only that member's keys.

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("art|Workload%d|opt|32x16", i)
	}
	return keys
}

// TestRingPlacementIgnoresInsertionOrder: every permutation of the
// member set places every key identically.
func TestRingPlacementIgnoresInsertionOrder(t *testing.T) {
	members := []string{"http://w0", "http://w1", "http://w2", "http://w3"}
	perms := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}}
	keys := ringKeys(200)

	want := map[string]string{}
	for pi, perm := range perms {
		r := NewRing(0)
		for _, i := range perm {
			r.Add(members[i])
		}
		for _, k := range keys {
			m, ok := r.Lookup(k)
			if !ok {
				t.Fatal("lookup on a populated ring failed")
			}
			if pi == 0 {
				want[k] = m
			} else if m != want[k] {
				t.Fatalf("perm %v places %q on %s; perm %v placed it on %s", perm, k, m, perms[0], want[k])
			}
		}
	}
}

// TestRingRemovalMovesOnlyTheRemovedMembersKeys: after removing one
// member, every key it did not own keeps its owner, and its own keys
// land on survivors.
func TestRingRemovalMovesOnlyTheRemovedMembersKeys(t *testing.T) {
	r := NewRing(0)
	members := []string{"http://w0", "http://w1", "http://w2", "http://w3"}
	for _, m := range members {
		r.Add(m)
	}
	keys := ringKeys(1000)
	before := map[string]string{}
	owned := 0
	const victim = "http://w2"
	for _, k := range keys {
		m, _ := r.Lookup(k)
		before[k] = m
		if m == victim {
			owned++
		}
	}
	if owned == 0 {
		t.Fatal("victim owned no keys; the test proves nothing")
	}

	r.Remove(victim)
	for _, k := range keys {
		m, ok := r.Lookup(k)
		if !ok {
			t.Fatal("lookup failed after removal")
		}
		if m == victim {
			t.Fatalf("%q still placed on the removed member", k)
		}
		if before[k] != victim && m != before[k] {
			t.Fatalf("%q moved from %s to %s although %s was removed", k, before[k], m, victim)
		}
	}

	// Re-adding restores the exact original placement (same member set
	// → same ring, by the insertion-order invariant).
	r.Add(victim)
	for _, k := range keys {
		if m, _ := r.Lookup(k); m != before[k] {
			t.Fatalf("%q on %s after re-add, originally %s", k, m, before[k])
		}
	}
}

// TestRingLookupNFailoverOrder: owner first, all distinct, capped at
// the member count, and dropping the owner promotes exactly the next
// member in the failover order.
func TestRingLookupNFailoverOrder(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("http://w%d", i))
	}
	for _, k := range ringKeys(50) {
		order := r.LookupN(k, 10)
		if len(order) != 4 {
			t.Fatalf("LookupN returned %d members, want all 4", len(order))
		}
		owner, _ := r.Lookup(k)
		if order[0] != owner {
			t.Fatalf("LookupN[0] = %s, Lookup = %s", order[0], owner)
		}
		seen := map[string]bool{}
		for _, m := range order {
			if seen[m] {
				t.Fatalf("LookupN repeated %s", m)
			}
			seen[m] = true
		}
	}
	// Failover contract: remove a key's owner and its keys land on the
	// member LookupN named second.
	k := ringKeys(1)[0]
	order := r.LookupN(k, 2)
	r.Remove(order[0])
	if m, _ := r.Lookup(k); m != order[1] {
		t.Fatalf("after removing the owner, %q went to %s, want the failover candidate %s", k, m, order[1])
	}
}

// TestRingSpread: with virtual nodes, no member of a 4-member ring
// starves (a sanity floor, not a tight balance claim).
func TestRingSpread(t *testing.T) {
	r := NewRing(0)
	counts := map[string]int{}
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("http://w%d", i))
	}
	keys := ringKeys(1000)
	for _, k := range keys {
		m, _ := r.Lookup(k)
		counts[m]++
	}
	for m, n := range counts {
		if n < len(keys)/20 {
			t.Errorf("member %s owns only %d/%d keys", m, n, len(keys))
		}
	}
}

// TestRingEmptyAndSingle covers the edges: empty ring refuses, a
// single member owns everything.
func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Lookup("k"); ok {
		t.Fatal("empty ring claimed to place a key")
	}
	if got := r.LookupN("k", 3); got != nil {
		t.Fatalf("empty ring LookupN = %v, want nil", got)
	}
	r.Add("http://only")
	for _, k := range ringKeys(10) {
		if m, _ := r.Lookup(k); m != "http://only" {
			t.Fatalf("single-member ring placed %q on %s", k, m)
		}
	}
	r.Remove("http://only")
	if r.Len() != 0 {
		t.Fatal("remove left members behind")
	}
}
