package fleet

// Admission-control contract: smooth-WRR grant order follows the
// weights exactly, tenant queues are bounded, and a cancelled waiter
// leaves no residue.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// waitDepth polls until the tenant's queue reaches depth n.
func waitDepth(t *testing.T, s *Scheduler, tenant string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Depths()[tenant] >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("tenant %s never reached queue depth %d (depths: %v)", tenant, n, s.Depths())
}

// TestSchedulerSmoothWRRGrantOrder pins the exact smooth-WRR schedule:
// weights a=3, b=1 with both queues full grant a,a,b,a,a,a,b,a.
func TestSchedulerSmoothWRRGrantOrder(t *testing.T) {
	s := NewScheduler(1, 16, []TenantConfig{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}})

	// Occupy the only slot so every arrival queues.
	if err := s.Acquire(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var got []string
	var wg sync.WaitGroup
	enqueue := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			start := s.Depths()[tenant]
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := s.Acquire(context.Background(), tenant); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				got = append(got, tenant)
				mu.Unlock()
				s.Release()
			}()
			waitDepth(t, s, tenant, start+1)
		}
	}
	enqueue("a", 6)
	enqueue("b", 2)

	s.Release() // free the slot; grants cascade one at a time
	wg.Wait()

	want := []string{"a", "a", "b", "a", "a", "a", "b", "a"}
	if len(got) != len(want) {
		t.Fatalf("granted %d waiters, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}
}

// TestSchedulerQueueCap: a tenant at queue capacity is rejected, not
// blocked.
func TestSchedulerQueueCap(t *testing.T) {
	s := NewScheduler(1, 2, nil)
	if err := s.Acquire(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		start := s.Depths()[DefaultTenant]
		go func() {
			errs <- s.Acquire(context.Background(), "")
		}()
		waitDepth(t, s, DefaultTenant, start+1)
	}
	if err := s.Acquire(context.Background(), ""); !errors.Is(err, ErrTenantQueueFull) {
		t.Fatalf("third waiter: err = %v, want ErrTenantQueueFull", err)
	}
	s.Release()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
		s.Release()
	}
}

// TestSchedulerCancelledWaiterLeavesNoResidue: a waiter that gives up
// is removed from its queue, and the slots keep flowing.
func TestSchedulerCancelledWaiterLeavesNoResidue(t *testing.T) {
	s := NewScheduler(1, 8, nil)
	if err := s.Acquire(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 1)
	go func() { errs <- s.Acquire(ctx, "") }()
	waitDepth(t, s, DefaultTenant, 1)
	cancel()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: err = %v, want context.Canceled", err)
	}
	if d := s.Depths()[DefaultTenant]; d != 0 {
		t.Fatalf("queue depth after cancellation = %d, want 0", d)
	}
	s.Release()
	// The slot is free again: an immediate acquire succeeds.
	if err := s.Acquire(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	s.Release()
	if got := s.Inflight(); got != 0 {
		t.Fatalf("inflight = %d, want 0", got)
	}
}

// TestSchedulerUnknownTenantUsesDefault: an unconfigured tenant name
// lands in the default bucket.
func TestSchedulerUnknownTenantUsesDefault(t *testing.T) {
	s := NewScheduler(1, 8, []TenantConfig{{Name: "paid", Weight: 4}})
	if err := s.Acquire(context.Background(), "nobody-configured-this"); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 1)
	go func() { errs <- s.Acquire(context.Background(), "also-unknown") }()
	waitDepth(t, s, DefaultTenant, 1)
	if d := s.Depths()["paid"]; d != 0 {
		t.Fatalf("paid queue depth = %d, want 0", d)
	}
	s.Release()
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	s.Release()
}
