package fleet

// Per-tenant QoS: admission control in front of the fleet. A global
// in-flight cap bounds how much work the router lets loose on the
// workers (their own queues provide per-process backpressure; this is
// the fleet-wide valve). When the cap is reached, arrivals wait in
// bounded per-tenant FIFO queues, and freed slots are handed out by
// smooth weighted round-robin — a tenant with weight 3 gets 3 slots
// for every 1 a weight-1 tenant gets, interleaved smoothly rather than
// in bursts, and an idle tenant's share flows to the active ones.

import (
	"context"
	"errors"
	"sort"
	"sync"
)

// ErrTenantQueueFull rejects an arrival whose tenant queue is at
// capacity (HTTP 429 at the router).
var ErrTenantQueueFull = errors.New("fleet: tenant queue full")

// DefaultTenant is the bucket for requests with no (or an unknown)
// X-Ipim-Tenant header.
const DefaultTenant = "default"

// TenantConfig names one tenant and its scheduling weight.
type TenantConfig struct {
	Name   string
	Weight int
}

// tenantQ is one tenant's queue and smooth-WRR state.
type tenantQ struct {
	name    string
	weight  int
	current int // smooth-WRR accumulator
	waiters []chan struct{}
}

// Scheduler is the admission controller. Goroutine-safe.
type Scheduler struct {
	mu          sync.Mutex
	maxInflight int
	queueCap    int
	inflight    int
	waiting     int
	tenants     map[string]*tenantQ
	order       []string // sorted tenant names: deterministic iteration
}

// NewScheduler builds the admission controller. maxInflight <= 0
// defaults to 64, queueCap <= 0 to 64 per tenant. A "default" tenant
// (weight 1) is added unless configured explicitly.
func NewScheduler(maxInflight, queueCap int, tenants []TenantConfig) *Scheduler {
	if maxInflight <= 0 {
		maxInflight = 64
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	s := &Scheduler{
		maxInflight: maxInflight,
		queueCap:    queueCap,
		tenants:     map[string]*tenantQ{},
	}
	for _, tc := range tenants {
		w := tc.Weight
		if w < 1 {
			w = 1
		}
		s.tenants[tc.Name] = &tenantQ{name: tc.Name, weight: w}
	}
	if _, ok := s.tenants[DefaultTenant]; !ok {
		s.tenants[DefaultTenant] = &tenantQ{name: DefaultTenant, weight: 1}
	}
	for name := range s.tenants {
		s.order = append(s.order, name)
	}
	sort.Strings(s.order)
	return s
}

// normalize maps a request's tenant header onto a configured tenant.
func (s *Scheduler) normalize(tenant string) string {
	if _, ok := s.tenants[tenant]; !ok {
		return DefaultTenant
	}
	return tenant
}

// Acquire admits one request, blocking in the tenant's queue when the
// global cap is reached. Returns nil once admitted (pair with
// Release), ErrTenantQueueFull when the tenant queue is at capacity,
// or the context error if the caller gives up first.
func (s *Scheduler) Acquire(ctx context.Context, tenant string) error {
	s.mu.Lock()
	tq := s.tenants[s.normalize(tenant)]
	// Jumping the line while others wait would defeat the weights, so a
	// free slot is taken directly only when no one is queued.
	if s.inflight < s.maxInflight && s.waiting == 0 {
		s.inflight++
		s.mu.Unlock()
		return nil
	}
	if len(tq.waiters) >= s.queueCap {
		s.mu.Unlock()
		return ErrTenantQueueFull
	}
	grant := make(chan struct{})
	tq.waiters = append(tq.waiters, grant)
	s.waiting++
	s.mu.Unlock()

	select {
	case <-grant:
		return nil // dispatch already counted us in-flight
	case <-ctx.Done():
		s.mu.Lock()
		removed := false
		for i, w := range tq.waiters {
			if w == grant {
				tq.waiters = append(tq.waiters[:i], tq.waiters[i+1:]...)
				s.waiting--
				removed = true
				break
			}
		}
		s.mu.Unlock()
		if !removed {
			// The grant raced the cancellation: the slot is ours, give
			// it back.
			s.Release()
		}
		return ctx.Err()
	}
}

// Release returns an admitted request's slot and hands freed capacity
// to queued waiters by smooth weighted round-robin.
func (s *Scheduler) Release() {
	s.mu.Lock()
	s.inflight--
	for s.inflight < s.maxInflight && s.waiting > 0 {
		tq := s.swrrPickLocked()
		grant := tq.waiters[0]
		tq.waiters = tq.waiters[1:]
		s.waiting--
		s.inflight++
		close(grant)
	}
	s.mu.Unlock()
}

// swrrPickLocked runs one smooth-WRR round over the tenants that have
// waiters: every contender gains its weight, the richest wins and pays
// the total active weight back. Ties break by name so the schedule is
// deterministic.
func (s *Scheduler) swrrPickLocked() *tenantQ {
	total := 0
	var best *tenantQ
	for _, name := range s.order {
		tq := s.tenants[name]
		if len(tq.waiters) == 0 {
			continue
		}
		total += tq.weight
		tq.current += tq.weight
		if best == nil || tq.current > best.current {
			best = tq
		}
	}
	best.current -= total
	return best
}

// Depths snapshots every tenant's queue depth (including zeros, so the
// metrics series set stays fixed).
func (s *Scheduler) Depths() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.tenants))
	for name, tq := range s.tenants {
		out[name] = len(tq.waiters)
	}
	return out
}

// Inflight reports the number of admitted requests.
func (s *Scheduler) Inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}
