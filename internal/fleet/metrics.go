package fleet

// Hand-rolled Prometheus registry for the router, mirroring
// internal/serve's: stdlib-only, deterministic series order.

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// routerMetrics is the router's counter set plus render-time gauges.
type routerMetrics struct {
	mu sync.Mutex

	start time.Time

	// requests[route][status] = count
	requests map[string]map[int]int64

	failovers      int64 // mid-request switches to another worker
	streams        int64 // streams relayed to completion
	framesRelayed  int64 // output frames relayed across all streams
	beats          int64 // heartbeats accepted
	sweptDown      int64 // workers expired by the TTL sweep
	rejectedTenant int64 // admissions refused with a full tenant queue

	// Live gauges, sampled at render time.
	workerStates func() map[string]int
	readyCount   func() int
	tenantDepths func() map[string]int
	inflight     func() int
}

func newRouterMetrics() *routerMetrics {
	return &routerMetrics{start: time.Now(), requests: map[string]map[int]int64{}}
}

func (mt *routerMetrics) observeRequest(route string, status int) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	byStatus, ok := mt.requests[route]
	if !ok {
		byStatus = map[int]int64{}
		mt.requests[route] = byStatus
	}
	byStatus[status]++
}

func (mt *routerMetrics) add(counter *int64, n int64) {
	mt.mu.Lock()
	*counter += n
	mt.mu.Unlock()
}

// write renders the registry in Prometheus text format.
func (mt *routerMetrics) write(w io.Writer) {
	mt.mu.Lock()
	defer mt.mu.Unlock()

	fmt.Fprintf(w, "# HELP ipim_router_requests_total Requests handled by the router, by route and status.\n")
	fmt.Fprintf(w, "# TYPE ipim_router_requests_total counter\n")
	routes := make([]string, 0, len(mt.requests))
	for r := range mt.requests {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		statuses := make([]int, 0, len(mt.requests[r]))
		for s := range mt.requests[r] {
			statuses = append(statuses, s)
		}
		sort.Ints(statuses)
		for _, s := range statuses {
			fmt.Fprintf(w, "ipim_router_requests_total{route=%q,status=\"%d\"} %d\n", r, s, mt.requests[r][s])
		}
	}

	fmt.Fprintf(w, "# HELP ipim_router_failovers_total Mid-request failovers to another worker.\n")
	fmt.Fprintf(w, "# TYPE ipim_router_failovers_total counter\n")
	fmt.Fprintf(w, "ipim_router_failovers_total %d\n", mt.failovers)
	fmt.Fprintf(w, "# HELP ipim_router_streams_total Streams relayed to completion.\n")
	fmt.Fprintf(w, "# TYPE ipim_router_streams_total counter\n")
	fmt.Fprintf(w, "ipim_router_streams_total %d\n", mt.streams)
	fmt.Fprintf(w, "# HELP ipim_router_stream_frames_total Output frames relayed to stream clients.\n")
	fmt.Fprintf(w, "# TYPE ipim_router_stream_frames_total counter\n")
	fmt.Fprintf(w, "ipim_router_stream_frames_total %d\n", mt.framesRelayed)
	fmt.Fprintf(w, "# HELP ipim_router_heartbeats_total Worker heartbeats accepted.\n")
	fmt.Fprintf(w, "# TYPE ipim_router_heartbeats_total counter\n")
	fmt.Fprintf(w, "ipim_router_heartbeats_total %d\n", mt.beats)
	fmt.Fprintf(w, "# HELP ipim_router_workers_swept_total Workers expired by the heartbeat TTL sweep.\n")
	fmt.Fprintf(w, "# TYPE ipim_router_workers_swept_total counter\n")
	fmt.Fprintf(w, "ipim_router_workers_swept_total %d\n", mt.sweptDown)
	fmt.Fprintf(w, "# HELP ipim_tenant_rejections_total Admissions refused with a full tenant queue.\n")
	fmt.Fprintf(w, "# TYPE ipim_tenant_rejections_total counter\n")
	fmt.Fprintf(w, "ipim_tenant_rejections_total %d\n", mt.rejectedTenant)

	if mt.workerStates != nil {
		counts := mt.workerStates()
		states := make([]string, 0, len(counts))
		for s := range counts {
			states = append(states, s)
		}
		sort.Strings(states)
		fmt.Fprintf(w, "# HELP ipim_router_workers Known workers, by state.\n")
		fmt.Fprintf(w, "# TYPE ipim_router_workers gauge\n")
		for _, s := range states {
			fmt.Fprintf(w, "ipim_router_workers{state=%q} %d\n", s, counts[s])
		}
	}
	if mt.readyCount != nil {
		fmt.Fprintf(w, "# HELP ipim_router_ready_workers Workers currently in the routing ring.\n")
		fmt.Fprintf(w, "# TYPE ipim_router_ready_workers gauge\n")
		fmt.Fprintf(w, "ipim_router_ready_workers %d\n", mt.readyCount())
	}
	if mt.tenantDepths != nil {
		depths := mt.tenantDepths()
		tenants := make([]string, 0, len(depths))
		for t := range depths {
			tenants = append(tenants, t)
		}
		sort.Strings(tenants)
		fmt.Fprintf(w, "# HELP ipim_tenant_queue_depth Requests waiting for admission, by tenant.\n")
		fmt.Fprintf(w, "# TYPE ipim_tenant_queue_depth gauge\n")
		for _, t := range tenants {
			fmt.Fprintf(w, "ipim_tenant_queue_depth{tenant=%q} %d\n", t, depths[t])
		}
	}
	if mt.inflight != nil {
		fmt.Fprintf(w, "# HELP ipim_router_inflight Admitted requests currently in flight.\n")
		fmt.Fprintf(w, "# TYPE ipim_router_inflight gauge\n")
		fmt.Fprintf(w, "ipim_router_inflight %d\n", mt.inflight())
	}

	fmt.Fprintf(w, "# HELP ipim_router_uptime_seconds Seconds since the router started.\n")
	fmt.Fprintf(w, "# TYPE ipim_router_uptime_seconds gauge\n")
	fmt.Fprintf(w, "ipim_router_uptime_seconds %g\n", time.Since(mt.start).Seconds())
}
