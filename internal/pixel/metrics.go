package pixel

import "math"

// Image-quality metrics for comparing pipeline outputs (used by the
// examples and by tests that tolerate quantization, e.g. after netpbm
// round trips).

// MSE returns the mean squared error between two equally sized images.
func MSE(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H {
		panic("pixel: MSE shape mismatch")
	}
	var s float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		s += d * d
	}
	return s / float64(len(a.Pix))
}

// PSNR returns the peak signal-to-noise ratio in dB for [0,1] images.
// Identical images return +Inf.
func PSNR(a, b *Image) float64 {
	mse := MSE(a, b)
	if mse == 0 {
		return math.Inf(1)
	}
	return -10 * math.Log10(mse)
}

// Mean returns the average pixel value.
func (im *Image) Mean() float64 {
	var s float64
	for _, v := range im.Pix {
		s += float64(v)
	}
	return s / float64(len(im.Pix))
}

// Variance returns the pixel variance.
func (im *Image) Variance() float64 {
	m := im.Mean()
	var s float64
	for _, v := range im.Pix {
		d := float64(v) - m
		s += d * d
	}
	return s / float64(len(im.Pix))
}
