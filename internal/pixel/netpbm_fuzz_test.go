package pixel

import (
	"bytes"
	"testing"
)

// FuzzNetpbm fuzzes the netpbm decoders with hostile input: whatever
// the bytes, decoding must never panic, and any image the decoder
// accepts must round-trip stably — its first re-encoding is a fixpoint
// of encode(decode(...)). (Exact byte identity with the INPUT is not
// required: a maxval below 255 rescales on first decode; from the
// first re-encoding onward the representation is canonical.)
func FuzzNetpbm(f *testing.F) {
	// Seed with well-formed tiny images of both formats.
	var pgm bytes.Buffer
	if err := WritePGM(&pgm, Synth(8, 4, 1)); err != nil {
		f.Fatal(err)
	}
	f.Add(pgm.Bytes())
	var ppm bytes.Buffer
	if err := WritePPM(&ppm, Synth(4, 4, 1), Synth(4, 4, 2), Synth(4, 4, 3)); err != nil {
		f.Fatal(err)
	}
	f.Add(ppm.Bytes())
	// Header corners: comments, odd whitespace, small maxval (exercises
	// the rescale path), truncated pixels, hostile dimensions.
	f.Add([]byte("P5\n# comment\n 8 4\n255\n" + string(make([]byte, 32))))
	f.Add([]byte("P5 2 2 7\n\x00\x01\x02\x03"))
	f.Add([]byte("P6\n1 1\n255\n\xff\x00\x7f"))
	f.Add([]byte("P5\n65537 1\n255\n"))
	f.Add([]byte("P5\n-1 4\n255\n"))
	f.Add([]byte("P5\n999999999999999999999 1\n255\n"))
	f.Add([]byte("P5\n4 4\n0\n"))
	f.Add([]byte("P7\n4 4\n255\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		switch {
		case bytes.HasPrefix(data, []byte("P5")):
			im, err := ReadPGM(bytes.NewReader(data))
			if err != nil {
				return // rejected input: nothing to round-trip
			}
			var enc1 bytes.Buffer
			if err := WritePGM(&enc1, im); err != nil {
				t.Fatalf("decoded image does not re-encode: %v", err)
			}
			im2, err := ReadPGM(bytes.NewReader(enc1.Bytes()))
			if err != nil {
				t.Fatalf("re-encoding does not decode: %v", err)
			}
			if im2.W != im.W || im2.H != im.H {
				t.Fatalf("round trip changed dimensions: %dx%d -> %dx%d", im.W, im.H, im2.W, im2.H)
			}
			var enc2 bytes.Buffer
			if err := WritePGM(&enc2, im2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
				t.Fatal("PGM encoding is not a fixpoint after the first decode")
			}
		case bytes.HasPrefix(data, []byte("P6")):
			rp, gp, bp, err := ReadPPM(bytes.NewReader(data))
			if err != nil {
				return
			}
			var enc1 bytes.Buffer
			if err := WritePPM(&enc1, rp, gp, bp); err != nil {
				t.Fatalf("decoded image does not re-encode: %v", err)
			}
			r2, g2, b2, err := ReadPPM(bytes.NewReader(enc1.Bytes()))
			if err != nil {
				t.Fatalf("re-encoding does not decode: %v", err)
			}
			var enc2 bytes.Buffer
			if err := WritePPM(&enc2, r2, g2, b2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
				t.Fatal("PPM encoding is not a fixpoint after the first decode")
			}
		default:
			// Not a netpbm magic: both decoders must reject, not panic.
			if _, err := ReadPGM(bytes.NewReader(data)); err == nil {
				t.Fatal("ReadPGM accepted a non-P5 input")
			}
			if _, _, _, err := ReadPPM(bytes.NewReader(data)); err == nil {
				t.Fatal("ReadPPM accepted a non-P6 input")
			}
		}
	})
}
