package pixel

import (
	"testing"
	"testing/quick"
)

func TestNewAndSetAt(t *testing.T) {
	im := New(4, 3)
	if im.W != 4 || im.H != 3 || len(im.Pix) != 12 {
		t.Fatalf("bad image shape: %+v", im)
	}
	im.Set(2, 1, 7)
	if got := im.At(2, 1); got != 7 {
		t.Fatalf("At(2,1) = %v, want 7", got)
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestAtClampsToEdge(t *testing.T) {
	im := Ramp(3, 3)
	cases := []struct {
		x, y int
		want float32
	}{
		{-1, 0, 0}, // clamp left
		{5, 0, 2},  // clamp right
		{0, -2, 0}, // clamp top
		{0, 9, 6},  // clamp bottom
		{-3, 9, 6}, // both
		{1, 1, 4},  // interior
	}
	for _, c := range cases {
		if got := im.At(c.x, c.y); got != c.want {
			t.Errorf("At(%d,%d) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestSetPanicsOutOfBounds(t *testing.T) {
	im := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Set out of bounds did not panic")
		}
	}()
	im.Set(2, 0, 1)
}

func TestCloneIsDeep(t *testing.T) {
	a := Ramp(4, 4)
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Fatal("Clone shares backing storage")
	}
	if MaxAbsDiff(a, b) != 99 {
		t.Fatalf("unexpected diff %v", MaxAbsDiff(a, b))
	}
}

func TestFill(t *testing.T) {
	im := New(3, 2)
	im.Fill(2.5)
	for i, v := range im.Pix {
		if v != 2.5 {
			t.Fatalf("Pix[%d] = %v after Fill(2.5)", i, v)
		}
	}
}

func TestMaxAbsDiffPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	MaxAbsDiff(New(2, 2), New(3, 2))
}

func TestEqualish(t *testing.T) {
	a := Ramp(4, 4)
	b := a.Clone()
	if !Equalish(a, b, 0) {
		t.Fatal("identical images not Equalish at tol 0")
	}
	b.Pix[5] += 0.5
	if Equalish(a, b, 0.4) {
		t.Fatal("diff 0.5 passed tol 0.4")
	}
	if !Equalish(a, b, 0.6) {
		t.Fatal("diff 0.5 failed tol 0.6")
	}
}

func TestSynthDeterministicAndBounded(t *testing.T) {
	a := Synth(64, 48, 42)
	b := Synth(64, 48, 42)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("Synth not deterministic for equal seeds")
	}
	c := Synth(64, 48, 43)
	if MaxAbsDiff(a, c) == 0 {
		t.Fatal("Synth identical across different seeds")
	}
	for i, v := range a.Pix {
		if v < 0 || v > 1 {
			t.Fatalf("Synth pixel %d = %v outside [0,1]", i, v)
		}
	}
}

func TestSynthHasVariation(t *testing.T) {
	im := Synth(128, 128, 7)
	mn, mx := im.Pix[0], im.Pix[0]
	for _, v := range im.Pix {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if mx-mn < 0.3 {
		t.Fatalf("Synth dynamic range too small: [%v, %v]", mn, mx)
	}
}

func TestRamp(t *testing.T) {
	im := Ramp(5, 2)
	if im.At(3, 1) != 8 {
		t.Fatalf("Ramp(5,2).At(3,1) = %v, want 8", im.At(3, 1))
	}
}

func TestAtClampMatchesManualClampQuick(t *testing.T) {
	im := Synth(16, 16, 1)
	f := func(x, y int16) bool {
		xi, yi := int(x)%64-32, int(y)%64-32
		cx, cy := xi, yi
		if cx < 0 {
			cx = 0
		}
		if cx > 15 {
			cx = 15
		}
		if cy < 0 {
			cy = 0
		}
		if cy > 15 {
			cy = 15
		}
		return im.At(xi, yi) == im.Pix[cy*16+cx]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
