package pixel

// Multi-frame netpbm support for the streaming endpoint (POST
// /v1/stream): a stream body is a back-to-back concatenation of binary
// PGM frames, each self-delimiting (header + w*h pixel bytes). The
// helpers here delimit frames in a byte slice without decoding pixels,
// so the router can split a stream, forward a suffix of it after a
// worker failover, and re-split it cheaply. They reuse the hardened
// header parsing of the full decoders (strict magic at byte 0,
// dimension and maxval limits), so a hostile stream cannot request an
// enormous allocation frame by frame any more than a single image can.

import (
	"bufio"
	"bytes"
	"fmt"
)

// NetpbmDims parses the header of the binary netpbm image at the front
// of b and returns its magic ("P5" or "P6") and dimensions without
// touching the pixel data. It applies the same validation as the full
// decoders; the router uses it to derive the artifact routing key from
// a request body it never decodes.
func NetpbmDims(b []byte) (magic string, w, h int, err error) {
	r := bytes.NewReader(b)
	br := bufio.NewReader(r)
	magic, err = pbmMagic(br)
	if err != nil {
		return "", 0, 0, err
	}
	if magic != "P5" && magic != "P6" {
		return "", 0, 0, fmt.Errorf("pixel: not a binary PGM or PPM (magic %q)", magic)
	}
	w, h, _, err = pbmHeader(br)
	if err != nil {
		return "", 0, 0, err
	}
	return magic, w, h, nil
}

// pgmFrameLen parses the binary PGM frame at the front of b and
// returns its dimensions and total encoded length (header + pixel
// bytes), so consecutive frames of a multi-frame stream can be split
// without decoding.
func pgmFrameLen(b []byte) (w, h, n int, err error) {
	r := bytes.NewReader(b)
	br := bufio.NewReader(r)
	magic, err := pbmMagic(br)
	if err != nil {
		return 0, 0, 0, err
	}
	if magic != "P5" {
		return 0, 0, 0, fmt.Errorf("pixel: stream frame is not a binary PGM (magic %q)", magic)
	}
	w, h, _, err = pbmHeader(br)
	if err != nil {
		return 0, 0, 0, err
	}
	// Bytes the header parse consumed: what bufio drew from the reader,
	// minus what it still holds buffered.
	headerLen := len(b) - r.Len() - br.Buffered()
	n = headerLen + w*h
	if n > len(b) {
		return 0, 0, 0, fmt.Errorf("pixel: short PGM frame: header promises %d pixel bytes, %d remain", w*h, len(b)-headerLen)
	}
	return w, h, n, nil
}

// SplitPGMFrames splits a multi-frame stream body — back-to-back
// binary PGM frames — into per-frame subslices of b (no copying).
// Every frame must share the first frame's dimensions (one compiled
// artifact serves the whole stream); maxFrames > 0 bounds the frame
// count. The returned w, h are the common frame geometry.
func SplitPGMFrames(b []byte, maxFrames int) (frames [][]byte, w, h int, err error) {
	off := 0
	for off < len(b) {
		fw, fh, n, ferr := pgmFrameLen(b[off:])
		if ferr != nil {
			return nil, 0, 0, fmt.Errorf("pixel: stream frame %d: %w", len(frames), ferr)
		}
		if len(frames) == 0 {
			w, h = fw, fh
		} else if fw != w || fh != h {
			return nil, 0, 0, fmt.Errorf("pixel: stream frame %d is %dx%d, want %dx%d (all frames must share one geometry)",
				len(frames), fw, fh, w, h)
		}
		if maxFrames > 0 && len(frames) == maxFrames {
			return nil, 0, 0, fmt.Errorf("pixel: stream exceeds %d frames", maxFrames)
		}
		frames = append(frames, b[off:off+n])
		off += n
	}
	if len(frames) == 0 {
		return nil, 0, 0, fmt.Errorf("pixel: empty stream body (want one or more binary PGM frames)")
	}
	return frames, w, h, nil
}
