package pixel

// Netpbm I/O: binary PGM (P5, grayscale) and PPM (P6, RGB as three
// planes), so the examples and ipim-run can process real images with
// only the standard library. Pixels map linearly between [0, maxval]
// bytes and [0, 1] float32.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Header limits. The readers are network-facing through the serving
// daemon (internal/serve), so a hostile header must not be able to
// request an enormous allocation: dimensions are capped well above any
// real workload (the paper's DIV8K frames are 8192×5464 ≈ 45 MPix)
// but far below anything that could exhaust memory.
const (
	maxPBMDim    = 1 << 16 // per-dimension cap
	maxPBMPixels = 1 << 26 // ≈ 67 MPix → 256 MB of float32 per plane
)

// ReadPGM decodes a binary (P5) PGM image into a [0,1] float plane.
func ReadPGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := pbmMagic(br)
	if err != nil {
		return nil, err
	}
	if magic != "P5" {
		return nil, fmt.Errorf("pixel: not a binary PGM (magic %q)", magic)
	}
	w, h, maxv, err := pbmHeader(br)
	if err != nil {
		return nil, err
	}
	im := New(w, h)
	buf := make([]byte, w*h)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("pixel: short PGM pixel data: %w", err)
	}
	scale := 1 / float32(maxv)
	for i, b := range buf {
		im.Pix[i] = float32(b) * scale
	}
	return im, nil
}

// WritePGM encodes the plane as binary (P5) PGM, clamping to [0,1].
func WritePGM(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P5\n%d %d\n255\n", im.W, im.H)
	for _, v := range im.Pix {
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		bw.WriteByte(byte(v*255 + 0.5))
	}
	return bw.Flush()
}

// ReadPPM decodes a binary (P6) PPM image into R, G, B planes.
func ReadPPM(r io.Reader) (rp, gp, bp *Image, err error) {
	br := bufio.NewReader(r)
	magic, err := pbmMagic(br)
	if err != nil {
		return nil, nil, nil, err
	}
	if magic != "P6" {
		return nil, nil, nil, fmt.Errorf("pixel: not a binary PPM (magic %q)", magic)
	}
	w, h, maxv, err := pbmHeader(br)
	if err != nil {
		return nil, nil, nil, err
	}
	rp, gp, bp = New(w, h), New(w, h), New(w, h)
	buf := make([]byte, 3*w*h)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, nil, nil, fmt.Errorf("pixel: short PPM pixel data: %w", err)
	}
	scale := 1 / float32(maxv)
	for i := 0; i < w*h; i++ {
		rp.Pix[i] = float32(buf[3*i]) * scale
		gp.Pix[i] = float32(buf[3*i+1]) * scale
		bp.Pix[i] = float32(buf[3*i+2]) * scale
	}
	return rp, gp, bp, nil
}

// WritePPM encodes three planes as binary (P6) PPM.
func WritePPM(w io.Writer, rp, gp, bp *Image) error {
	if rp.W != gp.W || rp.W != bp.W || rp.H != gp.H || rp.H != bp.H {
		return fmt.Errorf("pixel: PPM planes differ in shape")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P6\n%d %d\n255\n", rp.W, rp.H)
	clamp := func(v float32) byte {
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		return byte(v*255 + 0.5)
	}
	for i := range rp.Pix {
		bw.WriteByte(clamp(rp.Pix[i]))
		bw.WriteByte(clamp(gp.Pix[i]))
		bw.WriteByte(clamp(bp.Pix[i]))
	}
	return bw.Flush()
}

// pbmMagic reads the two magic bytes, which the netpbm spec requires
// at the very start of the stream — no leading whitespace or comments
// (pbmToken would skip them, letting " P5 ..." impersonate a PGM).
func pbmMagic(br *bufio.Reader) (string, error) {
	var m [2]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return "", fmt.Errorf("pixel: netpbm magic: %w", err)
	}
	return string(m[:]), nil
}

// pbmToken reads the next whitespace-delimited token, skipping
// '#'-comments.
func pbmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if len(tok) > 0 && err == io.EOF {
				return string(tok), nil
			}
			return "", fmt.Errorf("pixel: netpbm header: %w", err)
		}
		switch {
		case b == '#':
			if _, err := br.ReadString('\n'); err != nil {
				return "", fmt.Errorf("pixel: netpbm comment: %w", err)
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

func pbmHeader(br *bufio.Reader) (w, h, maxv int, err error) {
	read := func() (int, error) {
		tok, err := pbmToken(br)
		if err != nil {
			return 0, err
		}
		// strconv.Atoi is strict: "12abc", "+3", "1e3" are rejected
		// (Sscanf would silently accept a numeric prefix).
		v, err := strconv.Atoi(tok)
		if err != nil {
			return 0, fmt.Errorf("pixel: bad netpbm header token %q", tok)
		}
		return v, nil
	}
	if w, err = read(); err != nil {
		return
	}
	if h, err = read(); err != nil {
		return
	}
	if maxv, err = read(); err != nil {
		return
	}
	if w <= 0 || h <= 0 {
		err = fmt.Errorf("pixel: bad netpbm dimensions %dx%d", w, h)
		return
	}
	// Division instead of w*h keeps the check overflow-proof.
	if w > maxPBMDim || h > maxPBMDim || w > maxPBMPixels/h {
		err = fmt.Errorf("pixel: netpbm image %dx%d exceeds the %d-pixel limit", w, h, maxPBMPixels)
		return
	}
	if maxv <= 0 || maxv > 255 {
		err = fmt.Errorf("pixel: unsupported netpbm maxval %d", maxv)
		return
	}
	return
}
