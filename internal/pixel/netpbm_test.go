package pixel

import (
	"bytes"
	"strings"
	"testing"
)

func TestPGMRoundTrip(t *testing.T) {
	im := Synth(17, 9, 4)
	var buf bytes.Buffer
	if err := WritePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != im.W || got.H != im.H {
		t.Fatalf("shape %dx%d", got.W, got.H)
	}
	// 8-bit quantization: within 1/255 + rounding.
	if d := MaxAbsDiff(im, got); d > 1.0/255+1e-6 {
		t.Fatalf("round trip error %v", d)
	}
}

func TestPGMClampsOutOfRange(t *testing.T) {
	im := New(2, 1)
	im.Pix[0] = -0.5
	im.Pix[1] = 2.0
	var buf bytes.Buffer
	if err := WritePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pix[0] != 0 || got.Pix[1] != 1 {
		t.Fatalf("clamping lost: %v", got.Pix)
	}
}

func TestPGMComments(t *testing.T) {
	src := "P5 # magic\n# a comment line\n2 1\n# another\n255\nAB"
	im, err := ReadPGM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 2 || im.H != 1 {
		t.Fatalf("shape %dx%d", im.W, im.H)
	}
	if im.Pix[0] != float32('A')/255 {
		t.Fatalf("pixel 0 = %v", im.Pix[0])
	}
}

func TestPGMErrors(t *testing.T) {
	cases := []string{
		"",                   // empty
		"P2\n2 1\n255\n..",   // ascii PGM unsupported
		"P5\n0 1\n255\n",     // bad dims
		"P5\n2 1\n99999\nAB", // bad maxval
		"P5\n2 1\n255\nA",    // short data
		"P5\nxx 1\n255\nAB",  // bad token
	}
	for _, src := range cases {
		if _, err := ReadPGM(strings.NewReader(src)); err == nil {
			t.Errorf("ReadPGM(%q) succeeded", src)
		}
	}
}

func TestPPMRoundTrip(t *testing.T) {
	r := Synth(8, 6, 1)
	g := Synth(8, 6, 2)
	b := Synth(8, 6, 3)
	var buf bytes.Buffer
	if err := WritePPM(&buf, r, g, b); err != nil {
		t.Fatal(err)
	}
	r2, g2, b2, err := ReadPPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]*Image{{r, r2}, {g, g2}, {b, b2}} {
		if d := MaxAbsDiff(pair[0], pair[1]); d > 1.0/255+1e-6 {
			t.Fatalf("PPM plane error %v", d)
		}
	}
}

func TestPPMShapeMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePPM(&buf, New(2, 2), New(3, 2), New(2, 2)); err == nil {
		t.Fatal("mismatched planes accepted")
	}
	if _, _, _, err := ReadPPM(strings.NewReader("P5\n2 1\n255\nAB")); err == nil {
		t.Fatal("PGM magic accepted as PPM")
	}
}
