package pixel

import (
	"bytes"
	"strings"
	"testing"
)

func TestPGMRoundTrip(t *testing.T) {
	im := Synth(17, 9, 4)
	var buf bytes.Buffer
	if err := WritePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != im.W || got.H != im.H {
		t.Fatalf("shape %dx%d", got.W, got.H)
	}
	// 8-bit quantization: within 1/255 + rounding.
	if d := MaxAbsDiff(im, got); d > 1.0/255+1e-6 {
		t.Fatalf("round trip error %v", d)
	}
}

func TestPGMClampsOutOfRange(t *testing.T) {
	im := New(2, 1)
	im.Pix[0] = -0.5
	im.Pix[1] = 2.0
	var buf bytes.Buffer
	if err := WritePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pix[0] != 0 || got.Pix[1] != 1 {
		t.Fatalf("clamping lost: %v", got.Pix)
	}
}

func TestPGMComments(t *testing.T) {
	src := "P5 # magic\n# a comment line\n2 1\n# another\n255\nAB"
	im, err := ReadPGM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 2 || im.H != 1 {
		t.Fatalf("shape %dx%d", im.W, im.H)
	}
	if im.Pix[0] != float32('A')/255 {
		t.Fatalf("pixel 0 = %v", im.Pix[0])
	}
}

func TestPGMErrors(t *testing.T) {
	// The readers face the network through the serving daemon, so
	// hostile headers must fail with an error — never a panic or an
	// attempted giant allocation.
	cases := []struct {
		name, src string
	}{
		{"empty", ""},
		{"ascii pgm", "P2\n2 1\n255\n.."},
		{"zero width", "P5\n0 1\n255\n"},
		{"zero height", "P5\n2 0\n255\n"},
		{"negative width", "P5\n-2 1\n255\nAB"},
		{"negative height", "P5\n2 -1\n255\nAB"},
		{"bad maxval", "P5\n2 1\n99999\nAB"},
		{"zero maxval", "P5\n2 1\n0\nAB"},
		{"negative maxval", "P5\n2 1\n-255\nAB"},
		{"short data", "P5\n2 1\n255\nA"},
		{"no data", "P5\n2 1\n255\n"},
		{"bad token", "P5\nxx 1\n255\nAB"},
		{"trailing junk token", "P5\n2a 1\n255\nAB"},
		{"exponent token", "P5\n1e3 1\n255\nAB"},
		{"truncated header", "P5\n2"},
		{"huge width", "P5\n99999999 1\n255\nAB"},
		{"huge height", "P5\n1 99999999\n255\nAB"},
		{"huge area", "P5\n65536 65536\n255\nAB"},
		{"overflow-bait dims", "P5\n46341 46341\n255\nAB"}, // ~2^31 pixels
		{"unterminated comment", "P5\n2 1\n255 #"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadPGM(strings.NewReader(tc.src)); err == nil {
				t.Errorf("ReadPGM(%q) succeeded", tc.src)
			}
		})
	}
}

func TestPPMErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"empty", ""},
		{"pgm magic", "P5\n2 1\n255\nAB"},
		{"zero dims", "P6\n0 0\n255\n"},
		{"huge dims", "P6\n99999999 99999999\n255\n"},
		{"bad maxval", "P6\n2 1\n70000\n" + strings.Repeat("A", 6)},
		{"short data", "P6\n2 1\n255\nABCD"},
		{"bad token", "P6\n2 one\n255\n" + strings.Repeat("A", 6)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, _, err := ReadPPM(strings.NewReader(tc.src)); err == nil {
				t.Errorf("ReadPPM(%q) succeeded", tc.src)
			}
		})
	}
}

func TestPGMAcceptsLargestAllowedHeader(t *testing.T) {
	// Just under the per-dimension cap with a tiny area: the header is
	// fine, only the (missing) pixel data fails — proving the limits
	// don't reject legitimate large-but-sane headers outright.
	src := "P5\n65536 1\n255\n"
	_, err := ReadPGM(strings.NewReader(src + strings.Repeat("A", 65536)))
	if err != nil {
		t.Fatalf("64Ki-wide image rejected: %v", err)
	}
}

func TestPPMRoundTrip(t *testing.T) {
	r := Synth(8, 6, 1)
	g := Synth(8, 6, 2)
	b := Synth(8, 6, 3)
	var buf bytes.Buffer
	if err := WritePPM(&buf, r, g, b); err != nil {
		t.Fatal(err)
	}
	r2, g2, b2, err := ReadPPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]*Image{{r, r2}, {g, g2}, {b, b2}} {
		if d := MaxAbsDiff(pair[0], pair[1]); d > 1.0/255+1e-6 {
			t.Fatalf("PPM plane error %v", d)
		}
	}
}

func TestPPMShapeMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePPM(&buf, New(2, 2), New(3, 2), New(2, 2)); err == nil {
		t.Fatal("mismatched planes accepted")
	}
	if _, _, _, err := ReadPPM(strings.NewReader("P5\n2 1\n255\nAB")); err == nil {
		t.Fatal("PGM magic accepted as PPM")
	}
}
