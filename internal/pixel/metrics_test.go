package pixel

import (
	"math"
	"testing"
)

func TestMSEAndPSNR(t *testing.T) {
	a := Synth(16, 16, 1)
	b := a.Clone()
	if MSE(a, b) != 0 {
		t.Fatal("MSE of identical images nonzero")
	}
	if !math.IsInf(PSNR(a, b), 1) {
		t.Fatal("PSNR of identical images not +Inf")
	}
	for i := range b.Pix {
		b.Pix[i] += 0.1
	}
	mse := MSE(a, b)
	if math.Abs(mse-0.01) > 1e-7 {
		t.Fatalf("MSE = %v, want 0.01", mse)
	}
	psnr := PSNR(a, b)
	if math.Abs(psnr-20) > 1e-4 {
		t.Fatalf("PSNR = %v dB, want 20", psnr)
	}
}

func TestMSEPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch accepted")
		}
	}()
	MSE(New(2, 2), New(3, 3))
}

func TestMeanVariance(t *testing.T) {
	im := New(2, 2)
	im.Pix = []float32{0, 0.5, 0.5, 1}
	if im.Mean() != 0.5 {
		t.Fatalf("Mean = %v", im.Mean())
	}
	if math.Abs(im.Variance()-0.125) > 1e-9 {
		t.Fatalf("Variance = %v, want 0.125", im.Variance())
	}
	// Blur reduces variance (smoothing) but preserves the mean-ish:
	// quick sanity on the metric utilities with a real image.
	img := Synth(64, 32, 7)
	if img.Variance() <= 0 {
		t.Fatal("synthetic image has zero variance")
	}
}
