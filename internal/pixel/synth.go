package pixel

// Synthetic DIV8K stand-in. The paper evaluates on DIV8K (1500+ diverse 8K
// photographs). We cannot redistribute that dataset, so Synth generates
// deterministic scene-like images: multi-octave value noise for texture,
// a large-scale illumination gradient, and hard edges so that
// edge-preserving pipelines (bilateral grid, local Laplacian) and the
// value-dependent Histogram benchmark see natural-image-like statistics.

// rng is a small splitmix64 generator: deterministic across platforms,
// no math/rand dependency in hot paths.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hash2 maps a lattice point and seed to [0,1).
func hash2(x, y int, seed uint64) float32 {
	h := rng{s: seed ^ uint64(int64(x))*0x9e3779b97f4a7c15 ^ uint64(int64(y))*0xc2b2ae3d27d4eb4f}
	return float32(h.next()>>40) / float32(1<<24)
}

// lerp linearly interpolates between a and b.
func lerp(a, b, t float32) float32 { return a + (b-a)*t }

// smooth is the classic smoothstep fade for value noise.
func smooth(t float32) float32 { return t * t * (3 - 2*t) }

// valueNoise samples smoothed lattice noise at (x/scale, y/scale).
func valueNoise(x, y, scale int, seed uint64) float32 {
	xi, yi := x/scale, y/scale
	tx := smooth(float32(x%scale) / float32(scale))
	ty := smooth(float32(y%scale) / float32(scale))
	v00 := hash2(xi, yi, seed)
	v10 := hash2(xi+1, yi, seed)
	v01 := hash2(xi, yi+1, seed)
	v11 := hash2(xi+1, yi+1, seed)
	return lerp(lerp(v00, v10, tx), lerp(v01, v11, tx), ty)
}

// Synth generates a deterministic scene-like W×H image with values in
// [0, 1]. Different seeds give different "photographs".
func Synth(w, h int, seed uint64) *Image {
	im := New(w, h)
	// Octave scales adapt to the image size so small test images still
	// contain low-frequency structure.
	base := w
	if h < w {
		base = h
	}
	s1 := max(2, base/4)
	s2 := max(2, base/16)
	s3 := max(2, base/64)
	edgeX := int(uint(seed)%uint(max(1, w/2))) + w/4 // vertical hard edge
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 0.5 * valueNoise(x, y, s1, seed)
			v += 0.3 * valueNoise(x, y, s2, seed^0xabcd)
			v += 0.12 * valueNoise(x, y, s3, seed^0x1234)
			// Illumination gradient.
			v += 0.08 * float32(x+y) / float32(w+h)
			// Hard edge to exercise edge-aware pipelines.
			if x > edgeX {
				v *= 0.55
			}
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			im.Pix[y*w+x] = v
		}
	}
	return im
}

// Ramp returns a W×H image whose pixel (x,y) = x + y*W, useful for
// data-movement tests where every value must be traceable.
func Ramp(w, h int) *Image {
	im := New(w, h)
	for i := range im.Pix {
		im.Pix[i] = float32(i)
	}
	return im
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
