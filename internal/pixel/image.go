// Package pixel provides single-channel floating-point image buffers and a
// deterministic synthetic high-resolution dataset generator that stands in
// for the DIV8K dataset used by the iPIM paper (see DESIGN.md §5).
//
// All iPIM workloads operate on FP32 grayscale planes; color pipelines in
// the paper are expressed as independent planes, so a single-channel image
// is the fundamental unit.
package pixel

import (
	"fmt"
	"math"
)

// Image is a dense row-major single-channel FP32 image.
//
// The zero value is an empty image; use New to allocate.
type Image struct {
	W, H int
	Pix  []float32 // len == W*H, row-major
}

// New allocates a zeroed W×H image. It panics on non-positive dimensions,
// which always indicates a programming error in a workload definition.
func New(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("pixel: invalid image size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]float32, w*h)}
}

// At returns the pixel at (x, y) with clamp-to-edge semantics for
// out-of-bounds coordinates. Clamping matches Halide's boundary handling
// used by the paper's stencil benchmarks.
func (im *Image) At(x, y int) float32 {
	if x < 0 {
		x = 0
	} else if x >= im.W {
		x = im.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// Set writes the pixel at (x, y). Out-of-bounds writes panic: workloads
// never produce out-of-range output coordinates.
func (im *Image) Set(x, y int, v float32) {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		panic(fmt.Sprintf("pixel: Set(%d,%d) outside %dx%d", x, y, im.W, im.H))
	}
	im.Pix[y*im.W+x] = v
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	out := New(im.W, im.H)
	copy(out.Pix, im.Pix)
	return out
}

// Fill sets every pixel to v.
func (im *Image) Fill(v float32) {
	for i := range im.Pix {
		im.Pix[i] = v
	}
}

// MaxAbsDiff returns the maximum absolute per-pixel difference between two
// equally sized images. It panics if the shapes differ.
func MaxAbsDiff(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("pixel: shape mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
	var m float64
	for i := range a.Pix {
		d := math.Abs(float64(a.Pix[i]) - float64(b.Pix[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// Equalish reports whether two images agree within tol at every pixel.
func Equalish(a, b *Image, tol float64) bool {
	return MaxAbsDiff(a, b) <= tol
}
