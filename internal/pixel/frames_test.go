package pixel

import (
	"bytes"
	"strings"
	"testing"
)

func encodePGM(t *testing.T, im *Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WritePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSplitPGMFramesRoundTrip(t *testing.T) {
	var body []byte
	var want [][]byte
	for seed := uint64(1); seed <= 4; seed++ {
		f := encodePGM(t, Synth(16, 8, seed))
		want = append(want, f)
		body = append(body, f...)
	}
	frames, w, h, err := SplitPGMFrames(body, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w != 16 || h != 8 {
		t.Fatalf("geometry = %dx%d, want 16x8", w, h)
	}
	if len(frames) != len(want) {
		t.Fatalf("split %d frames, want %d", len(frames), len(want))
	}
	for i := range frames {
		if !bytes.Equal(frames[i], want[i]) {
			t.Errorf("frame %d differs from its encoding", i)
		}
		if _, err := ReadPGM(bytes.NewReader(frames[i])); err != nil {
			t.Errorf("frame %d does not re-decode: %v", i, err)
		}
	}
}

func TestSplitPGMFramesWithComments(t *testing.T) {
	// A frame with a header comment still delimits exactly.
	withComment := []byte("P5\n# a comment\n4 2\n255\n01234567")
	body := append(append([]byte{}, withComment...), encodePGM(t, Synth(4, 2, 9))...)
	frames, w, h, err := SplitPGMFrames(body, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 || w != 4 || h != 2 {
		t.Fatalf("frames=%d %dx%d, want 2 frames of 4x2", len(frames), w, h)
	}
	if !bytes.Equal(frames[0], withComment) {
		t.Error("comment frame mis-delimited")
	}
}

func TestSplitPGMFramesErrors(t *testing.T) {
	good := encodePGM(t, Synth(8, 4, 1))
	other := encodePGM(t, Synth(4, 4, 1))
	cases := []struct {
		name string
		body []byte
		max  int
		want string
	}{
		{"empty", nil, 0, "empty stream"},
		{"not pgm", []byte("P6\n2 2\n255\n" + strings.Repeat("x", 12)), 0, "not a binary PGM"},
		{"garbage", []byte("hello world"), 0, "magic"},
		{"short frame", good[:len(good)-3], 0, "short PGM frame"},
		{"trailing garbage", append(append([]byte{}, good...), 'x'), 0, "magic"},
		{"mixed dims", append(append([]byte{}, good...), other...), 0, "must share one geometry"},
		{"too many", append(append([]byte{}, good...), good...), 1, "exceeds 1 frames"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := SplitPGMFrames(tc.body, tc.max)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestNetpbmDims(t *testing.T) {
	pgm := encodePGM(t, Synth(32, 16, 1))
	magic, w, h, err := NetpbmDims(pgm)
	if err != nil || magic != "P5" || w != 32 || h != 16 {
		t.Fatalf("PGM dims = %s %dx%d (%v), want P5 32x16", magic, w, h, err)
	}
	var buf bytes.Buffer
	if err := WritePPM(&buf, Synth(8, 4, 1), Synth(8, 4, 2), Synth(8, 4, 3)); err != nil {
		t.Fatal(err)
	}
	magic, w, h, err = NetpbmDims(buf.Bytes())
	if err != nil || magic != "P6" || w != 8 || h != 4 {
		t.Fatalf("PPM dims = %s %dx%d (%v), want P6 8x4", magic, w, h, err)
	}
	if _, _, _, err := NetpbmDims([]byte("nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, _, _, err := NetpbmDims([]byte("P7\n1 1\n255\nx")); err == nil {
		t.Fatal("P7 accepted")
	}
}
