// Package ckpt defines the container format and binary codec for
// machine checkpoints: a versioned, CRC-guarded envelope around an
// opaque payload, plus the little-endian encoder/decoder the simulator
// layers use to serialize their state into that payload.
//
// The package sits at the bottom of the dependency graph (stdlib only),
// so every layer — dram, noc, vault, cube — can speak the codec without
// import cycles; the cube package owns the payload schema (what state
// goes where), this package owns the bytes (framing, integrity,
// bounds-checked primitive decoding).
//
// Container layout:
//
//	offset  size  field
//	0       8     magic "IPIMCKPT"
//	8       4     format version (little-endian uint32)
//	12      8     payload length (little-endian uint64)
//	20      n     payload
//	20+n    4     CRC-32C (Castagnoli) of bytes [0, 20+n)
//
// Every decoding error is typed: ErrTruncated for torn tails and short
// reads, ErrVersion for schema-version mismatches, and ErrCorrupt for
// bad magic, CRC mismatches and malformed payloads (ErrTruncated wraps
// ErrCorrupt, so errors.Is(err, ErrCorrupt) matches both). Decoders
// never panic on hostile input — the FuzzCheckpointDecode target in
// internal/cube pins this.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Version is the current checkpoint format version. Bump it on any
// payload schema change; readers reject other versions with ErrVersion.
const Version = 1

// magic identifies a checkpoint container.
const magic = "IPIMCKPT"

// headerLen is the fixed container prefix: magic + version + length.
const headerLen = len(magic) + 4 + 8

// maxPayload bounds a declared payload length so hostile headers cannot
// drive huge allocations. Real checkpoints are dominated by materialized
// bank bytes; 1 GiB covers any configuration this simulator builds.
const maxPayload = 1 << 30

// Typed decoding errors. ErrTruncated and ErrVersion wrap ErrCorrupt
// where that reading makes sense, so a single errors.Is(err, ErrCorrupt)
// catches every "this is not a restorable checkpoint" case.
var (
	// ErrCorrupt marks a checkpoint whose bytes cannot be a valid
	// container or payload: bad magic, CRC mismatch, or malformed
	// payload structure.
	ErrCorrupt = errors.New("ckpt: corrupt checkpoint")

	// ErrTruncated marks a checkpoint cut short — a torn tail from a
	// crash mid-write, or any read that ends before the declared length.
	ErrTruncated = fmt.Errorf("truncated checkpoint: %w", ErrCorrupt)

	// ErrVersion marks a checkpoint written under a different schema
	// version than this build understands.
	ErrVersion = errors.New("ckpt: unsupported checkpoint version")
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Seal wraps a payload in the container format and returns the full
// checkpoint bytes: header, payload, CRC trailer.
func Seal(payload []byte) []byte {
	out := make([]byte, 0, headerLen+len(payload)+4)
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, castagnoli))
}

// Write seals the payload and writes the container to w.
func Write(w io.Writer, payload []byte) error {
	_, err := w.Write(Seal(payload))
	return err
}

// Open validates a sealed container held fully in memory and returns
// its payload (aliasing data, not a copy).
func Open(data []byte) ([]byte, error) {
	if len(data) < headerLen+4 {
		return nil, fmt.Errorf("ckpt: %d-byte container: %w", len(data), ErrTruncated)
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("ckpt: bad magic: %w", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[len(magic):]); v != Version {
		return nil, fmt.Errorf("%w: got version %d, want %d", ErrVersion, v, Version)
	}
	n := binary.LittleEndian.Uint64(data[len(magic)+4:])
	if n > maxPayload {
		return nil, fmt.Errorf("ckpt: declared payload of %d bytes: %w", n, ErrCorrupt)
	}
	total := headerLen + int(n) + 4
	if len(data) < total {
		return nil, fmt.Errorf("ckpt: container ends at %d of %d bytes: %w", len(data), total, ErrTruncated)
	}
	if len(data) > total {
		return nil, fmt.Errorf("ckpt: %d bytes after the CRC trailer: %w", len(data)-total, ErrCorrupt)
	}
	body := data[:headerLen+int(n)]
	want := binary.LittleEndian.Uint32(data[headerLen+int(n):])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, fmt.Errorf("ckpt: CRC mismatch (got %#x, want %#x): %w", got, want, ErrCorrupt)
	}
	return data[headerLen : headerLen+int(n)], nil
}

// Read consumes one sealed container from r and returns its payload.
func Read(r io.Reader) ([]byte, error) {
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("ckpt: reading header: %w", ErrTruncated)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, fmt.Errorf("ckpt: bad magic: %w", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(hdr[len(magic):]); v != Version {
		return nil, fmt.Errorf("%w: got version %d, want %d", ErrVersion, v, Version)
	}
	n := binary.LittleEndian.Uint64(hdr[len(magic)+4:])
	if n > maxPayload {
		return nil, fmt.Errorf("ckpt: declared payload of %d bytes: %w", n, ErrCorrupt)
	}
	rest := make([]byte, int(n)+4)
	if _, err := io.ReadFull(r, rest); err != nil {
		return nil, fmt.Errorf("ckpt: reading %d-byte payload: %w", n, ErrTruncated)
	}
	full := append(hdr, rest...)
	return Open(full)
}

// Enc is an append-only little-endian encoder building a payload.
// The zero value is ready to use.
type Enc struct {
	buf []byte
}

// Bytes returns the encoded payload so far.
func (e *Enc) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a little-endian int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as int64.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 by bit pattern.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes32 appends a length-prefixed byte slice (uint32 length).
func (e *Enc) Bytes32(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// I64s appends a length-prefixed []int64.
func (e *Enc) I64s(v []int64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.I64(x)
	}
}

// I32s appends a length-prefixed []int32.
func (e *Enc) I32s(v []int32) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.U32(uint32(x))
	}
}

// Bools appends a length-prefixed []bool.
func (e *Enc) Bools(v []bool) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.Bool(x)
	}
}

// Dec decodes a payload produced by Enc. Errors are sticky: after the
// first failure every subsequent read returns zero values and Err()
// keeps reporting the failure, so decoders can run a straight-line
// sequence of reads and check once at the end. All failures are typed
// (ErrTruncated via ErrCorrupt), never panics.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over payload.
func NewDec(payload []byte) *Dec { return &Dec{buf: payload} }

// Err returns the first decoding failure, or nil.
func (d *Dec) Err() error { return d.err }

// Len returns the number of bytes not yet consumed.
func (d *Dec) Len() int { return len(d.buf) - d.off }

// fail records the first error.
func (d *Dec) fail(context string) {
	if d.err == nil {
		d.err = fmt.Errorf("ckpt: decoding %s at offset %d: %w", context, d.off, ErrTruncated)
	}
}

// take consumes n bytes, or fails.
func (d *Dec) take(n int, context string) []byte {
	if d.err != nil || n < 0 || d.Len() < n {
		d.fail(context)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean. Any nonzero byte is true.
func (d *Dec) Bool() bool { return d.U8() != 0 }

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4, "u32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8, "u64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an int encoded as int64.
func (d *Dec) Int() int { return int(d.I64()) }

// F64 reads a float64 by bit pattern.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// count reads a uint32 length prefix, bounding it by the remaining
// bytes at elemSize bytes per element so hostile prefixes cannot drive
// huge allocations.
func (d *Dec) count(elemSize int, context string) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if n < 0 || (elemSize > 0 && n > d.Len()/elemSize) {
		d.fail(context + " length")
		return 0
	}
	return n
}

// Bytes32 reads a length-prefixed byte slice (copied out).
func (d *Dec) Bytes32() []byte {
	n := d.count(1, "bytes")
	b := d.take(n, "bytes")
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	n := d.count(1, "string")
	b := d.take(n, "string")
	return string(b)
}

// I64s reads a length-prefixed []int64.
func (d *Dec) I64s() []int64 {
	n := d.count(8, "[]int64")
	if n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.I64()
	}
	return out
}

// I32s reads a length-prefixed []int32.
func (d *Dec) I32s() []int32 {
	n := d.count(4, "[]int32")
	if n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.U32())
	}
	return out
}

// Bools reads a length-prefixed []bool.
func (d *Dec) Bools() []bool {
	n := d.count(1, "[]bool")
	if n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = d.Bool()
	}
	return out
}
