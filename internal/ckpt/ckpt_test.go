package ckpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"
)

// encodeEverything exercises every Enc method once and returns the
// payload plus the expected decoded values.
func encodeEverything() []byte {
	var e Enc
	e.U8(0xAB)
	e.Bool(true)
	e.Bool(false)
	e.U32(0xDEADBEEF)
	e.U64(0x0123456789ABCDEF)
	e.I64(-42)
	e.Int(7)
	e.F64(math.Pi)
	e.Bytes32([]byte{1, 2, 3})
	e.String("hello")
	e.I64s([]int64{-1, 0, 1})
	e.I32s([]int32{-2, 3})
	e.Bools([]bool{true, false, true})
	return e.Bytes()
}

func TestEncDecRoundTrip(t *testing.T) {
	d := NewDec(encodeEverything())
	if got := d.U8(); got != 0xAB {
		t.Errorf("U8 = %#x, want 0xAB", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round-trip broke")
	}
	if got := d.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 0x0123456789ABCDEF {
		t.Errorf("U64 = %#x", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Int(); got != 7 {
		t.Errorf("Int = %d", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := d.Bytes32(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes32 = %v", got)
	}
	if got := d.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := d.I64s(); len(got) != 3 || got[0] != -1 || got[2] != 1 {
		t.Errorf("I64s = %v", got)
	}
	if got := d.I32s(); len(got) != 2 || got[0] != -2 || got[1] != 3 {
		t.Errorf("I32s = %v", got)
	}
	if got := d.Bools(); len(got) != 3 || !got[0] || got[1] || !got[2] {
		t.Errorf("Bools = %v", got)
	}
	if d.Err() != nil {
		t.Fatalf("Err() = %v after a clean decode", d.Err())
	}
	if d.Len() != 0 {
		t.Errorf("Len() = %d, want 0 after consuming everything", d.Len())
	}
}

func TestDecEmptySlices(t *testing.T) {
	var e Enc
	e.Bytes32(nil)
	e.String("")
	e.I64s(nil)
	e.I32s(nil)
	e.Bools(nil)
	d := NewDec(e.Bytes())
	if got := d.Bytes32(); got != nil {
		t.Errorf("empty Bytes32 = %v, want nil", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if got := d.I64s(); got != nil {
		t.Errorf("empty I64s = %v", got)
	}
	if got := d.I32s(); got != nil {
		t.Errorf("empty I32s = %v", got)
	}
	if got := d.Bools(); got != nil {
		t.Errorf("empty Bools = %v", got)
	}
	if d.Err() != nil {
		t.Fatalf("Err() = %v", d.Err())
	}
}

func TestDecStickyError(t *testing.T) {
	d := NewDec([]byte{1, 2}) // too short for a u32
	if got := d.U32(); got != 0 {
		t.Errorf("failed U32 = %d, want 0", got)
	}
	first := d.Err()
	if !errors.Is(first, ErrTruncated) || !errors.Is(first, ErrCorrupt) {
		t.Fatalf("Err() = %v, want ErrTruncated wrapping ErrCorrupt", first)
	}
	// Every subsequent read keeps returning zero values and the same error.
	if d.U64() != 0 || d.String() != "" || d.I64s() != nil {
		t.Error("reads after a failure must return zero values")
	}
	if d.Err() != first {
		t.Errorf("Err() changed after the first failure: %v", d.Err())
	}
}

func TestDecHostileLengthPrefix(t *testing.T) {
	// A length prefix claiming far more elements than the remaining
	// bytes could hold must fail, not allocate.
	var e Enc
	e.U32(1 << 30)
	for _, decode := range []func(*Dec){
		func(d *Dec) { d.I64s() },
		func(d *Dec) { d.I32s() },
		func(d *Dec) { d.Bools() },
		func(d *Dec) { d.Bytes32() },
		func(d *Dec) { _ = d.String() },
	} {
		d := NewDec(e.Bytes())
		decode(d)
		if !errors.Is(d.Err(), ErrCorrupt) {
			t.Errorf("hostile length prefix: Err() = %v, want ErrCorrupt", d.Err())
		}
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	payload := []byte("the machine state")
	sealed := Seal(payload)
	got, err := Open(sealed)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("Open = %q, want %q", got, payload)
	}
	// Empty payloads are legal.
	if got, err := Open(Seal(nil)); err != nil || len(got) != 0 {
		t.Errorf("Open(Seal(nil)) = %v, %v", got, err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	payload := []byte{0, 1, 2, 3, 4}
	var buf bytes.Buffer
	if err := Write(&buf, payload); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("Read = %v, want %v", got, payload)
	}
}

func TestOpenRejections(t *testing.T) {
	sealed := Seal([]byte("payload"))
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"short container", sealed[:headerLen], ErrTruncated},
		{"empty", nil, ErrTruncated},
		{"bad magic", append([]byte("NOTACKPT"), sealed[8:]...), ErrCorrupt},
		{"torn tail", sealed[:len(sealed)-3], ErrTruncated},
		{"trailing bytes", append(append([]byte(nil), sealed...), 0xFF), ErrCorrupt},
	}
	ver := append([]byte(nil), sealed...)
	binary.LittleEndian.PutUint32(ver[len(magic):], Version+1)
	cases = append(cases, struct {
		name string
		data []byte
		want error
	}{"version mismatch", ver, ErrVersion})

	huge := append([]byte(nil), sealed...)
	binary.LittleEndian.PutUint64(huge[len(magic)+4:], maxPayload+1)
	cases = append(cases, struct {
		name string
		data []byte
		want error
	}{"oversize declared payload", huge, ErrCorrupt})

	crc := append([]byte(nil), sealed...)
	crc[headerLen] ^= 0x01 // flip one payload bit, CRC now mismatches
	cases = append(cases, struct {
		name string
		data []byte
		want error
	}{"CRC mismatch", crc, ErrCorrupt})

	for _, tc := range cases {
		if _, err := Open(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: Open = %v, want %v", tc.name, err, tc.want)
		}
	}
	// Every rejection must also satisfy the blanket ErrCorrupt match,
	// except the version mismatch (a valid container, wrong schema).
	for _, tc := range cases {
		if tc.want == ErrVersion {
			continue
		}
		if _, err := Open(tc.data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: not matched by errors.Is(_, ErrCorrupt)", tc.name)
		}
	}
}

func TestReadRejections(t *testing.T) {
	sealed := Seal([]byte("xyz"))
	if _, err := Read(strings.NewReader("")); !errors.Is(err, ErrTruncated) {
		t.Errorf("Read(empty) = %v, want ErrTruncated", err)
	}
	if _, err := Read(bytes.NewReader(sealed[:len(sealed)-2])); !errors.Is(err, ErrTruncated) {
		t.Errorf("Read(torn) = %v, want ErrTruncated", err)
	}
	bad := append([]byte(nil), sealed...)
	copy(bad, "WRONGMAG")
	if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Read(bad magic) = %v, want ErrCorrupt", err)
	}
	ver := append([]byte(nil), sealed...)
	binary.LittleEndian.PutUint32(ver[len(magic):], Version+7)
	if _, err := Read(bytes.NewReader(ver)); !errors.Is(err, ErrVersion) {
		t.Errorf("Read(version) = %v, want ErrVersion", err)
	}
	huge := append([]byte(nil), sealed...)
	binary.LittleEndian.PutUint64(huge[len(magic)+4:], maxPayload+1)
	if _, err := Read(bytes.NewReader(huge)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Read(oversize) = %v, want ErrCorrupt", err)
	}
}
