package ipim

// The determinism harness gating the parallel phase loop in
// internal/cube: a Machine.Run schedule — serial, or any worker count —
// must never show through in the results. Every test here compares the
// FULL sim.Stats with reflect.DeepEqual (cycle counts, stall breakdown,
// NoC/SERDES counters, DRAM counters, everything) plus the functional
// output, on a multi-cube multi-vault machine so cross-vault req
// traffic and the SERDES mesh are exercised.

import (
	"reflect"
	"testing"
)

// detConfig is a 2-cube × 4-vault machine (2 PGs × 2 PEs per vault):
// big enough for inter-vault and inter-cube traffic, small enough that
// the many runs below stay fast.
func detConfig() Config {
	cfg := DefaultConfig()
	cfg.Cubes = 2
	cfg.VaultsPerCube = 4
	cfg.PGsPerVault = 2
	cfg.PEsPerPG = 2
	cfg.BankBytes = 1 << 20
	return cfg
}

// detRun compiles wl for the detConfig machine and runs it on a fresh
// machine with the given phase parallelism. The functional result comes
// back as []float32 pixels (or the histogram bins reinterpreted, so
// every workload compares the same way).
func detRun(t *testing.T, wlName string, seed uint64, parallelism int) (Stats, []float32) {
	t.Helper()
	cfg := detConfig()
	wl, err := WorkloadByName(wlName)
	if err != nil {
		t.Fatal(err)
	}
	img := Synth(2*wl.TestW, 2*wl.TestH, seed)
	art, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatalf("compile %s: %v", wlName, err)
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.SetParallelism(parallelism)
	if wlName == "Histogram" {
		bins, stats, err := RunHistogram(m, art, img)
		if err != nil {
			t.Fatalf("run %s: %v", wlName, err)
		}
		out := make([]float32, len(bins))
		for i, b := range bins {
			out[i] = float32(b)
		}
		return stats, out
	}
	out, stats, err := Run(m, art, img)
	if err != nil {
		t.Fatalf("run %s: %v", wlName, err)
	}
	return stats, out.Pix
}

// TestParallelRunMatchesSerial is the core determinism contract: for
// each workload, a forced-serial run and a parallel run (worker pool
// wider than GOMAXPROCS, so goroutines really interleave) must agree
// bit for bit on stats and output.
func TestParallelRunMatchesSerial(t *testing.T) {
	for _, wlName := range []string{"Brighten", "GaussianBlur", "Shift", "Histogram"} {
		t.Run(wlName, func(t *testing.T) {
			serialStats, serialOut := detRun(t, wlName, 11, 1)
			parStats, parOut := detRun(t, wlName, 11, 4)
			if !reflect.DeepEqual(serialStats, parStats) {
				t.Errorf("stats diverge between serial and parallel:\nserial:   %+v\nparallel: %+v",
					serialStats, parStats)
			}
			if !reflect.DeepEqual(serialOut, parOut) {
				t.Errorf("functional output diverges between serial and parallel")
			}
			if serialStats.Cycles <= 0 || serialStats.Issued <= 0 {
				t.Errorf("degenerate run: %+v", serialStats)
			}
		})
	}
}

// TestParallelRunScheduleInvariance sweeps worker counts crossed with
// input seeds: every worker count must reproduce the same stats for a
// given seed, and distinct seeds must still be told apart (guarding
// against a trivially-constant fold).
func TestParallelRunScheduleInvariance(t *testing.T) {
	workers := []int{1, 2, 3, 4, 8}
	seeds := []uint64{1, 2, 3, 4, 5}
	var perSeed [][]float32
	for _, seed := range seeds {
		ref, refOut := detRun(t, "GaussianBlur", seed, workers[0])
		perSeed = append(perSeed, refOut)
		for _, w := range workers[1:] {
			got, gotOut := detRun(t, "GaussianBlur", seed, w)
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("seed %d: stats at parallelism %d diverge from parallelism %d:\nwant %+v\ngot  %+v",
					seed, w, workers[0], ref, got)
			}
			if !reflect.DeepEqual(refOut, gotOut) {
				t.Errorf("seed %d: output at parallelism %d diverges", seed, w)
			}
		}
	}
	// Timing is data-independent for a blur (same instruction stream
	// regardless of pixel values), so stats legitimately agree across
	// seeds; the outputs must not, or the comparison is vacuous.
	distinct := false
	for i := 1; i < len(perSeed); i++ {
		if !reflect.DeepEqual(perSeed[0], perSeed[i]) {
			distinct = true
		}
	}
	if !distinct {
		t.Error("all seeds produced identical outputs — the comparison is vacuous")
	}
}

// TestParallelHistogramCrossVaultInvariance pins the hardest path — the
// histogram's cross-vault req reduction, where every vault reads seven
// remote vaults' banks over the NoC and SERDES meshes — across worker
// counts.
func TestParallelHistogramCrossVaultInvariance(t *testing.T) {
	ref, refOut := detRun(t, "Histogram", 3, 1)
	if ref.RemoteReqs == 0 {
		t.Fatal("histogram run issued no remote reqs — the test lost its teeth")
	}
	if ref.SerdesBeat == 0 {
		t.Fatal("histogram run moved no SERDES traffic — cross-cube path untested")
	}
	for _, w := range []int{2, 4, 8} {
		got, gotOut := detRun(t, "Histogram", 3, w)
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("histogram stats at parallelism %d diverge from serial:\nwant %+v\ngot  %+v", w, ref, got)
		}
		if !reflect.DeepEqual(refOut, gotOut) {
			t.Errorf("histogram bins at parallelism %d diverge from serial", w)
		}
	}
}

// TestSerialEnvOverride pins the IPIM_SERIAL escape hatch: with the
// environment set, even a wide SetParallelism runs serial — and, per
// the determinism contract, still produces identical results.
func TestSerialEnvOverride(t *testing.T) {
	ref, _ := detRun(t, "Brighten", 7, 4)
	t.Setenv("IPIM_SERIAL", "1")
	got, _ := detRun(t, "Brighten", 7, 4)
	if !reflect.DeepEqual(ref, got) {
		t.Errorf("IPIM_SERIAL=1 run diverges from parallel run:\nwant %+v\ngot  %+v", ref, got)
	}
}
