package ipim

// Golden-model differential sweep: every Table II workload, compiled
// and executed on the cycle-level simulator, must agree bit for bit
// with the internal/halide reference interpreter — at more than one
// image size, because layout planning, bound inference and tile
// distribution all change shape with the input. Single-stage pipelines
// run on the two-vault tiny machine; multi-stage (halo-exchange)
// pipelines require a single-vault machine (DESIGN.md §2).

import (
	"fmt"
	"testing"

	"ipim/internal/pixel"
)

func TestGoldenModelSweep(t *testing.T) {
	for _, wl := range Workloads() {
		// Two sizes per workload: the unit-test size and a larger,
		// deliberately non-square multiple that shifts tile counts and
		// halo layout.
		sizes := [][2]int{
			{wl.TestW, wl.TestH},
			{2 * wl.TestW, 4 * wl.TestH},
		}
		for _, sz := range sizes {
			wl, w, h := wl, sz[0], sz[1]
			t.Run(fmt.Sprintf("%s/%dx%d", wl.Name, w, h), func(t *testing.T) {
				cfg := TinyConfig()
				if wl.MultiStage {
					cfg = TinyOneVaultConfig()
				}
				pipe := wl.Build().Pipe
				img := Synth(w, h, uint64(w)*1_000_003+uint64(h))
				art, err := Compile(&cfg, pipe, img.W, img.H, Opt)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				m, err := NewMachine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if wl.Name == "Histogram" {
					bins, stats, err := RunHistogram(m, art, img)
					if err != nil {
						t.Fatalf("run: %v", err)
					}
					want, err := pipe.ReferenceHistogram(img)
					if err != nil {
						t.Fatal(err)
					}
					if len(bins) != len(want) {
						t.Fatalf("%d bins, want %d", len(bins), len(want))
					}
					for i := range bins {
						if bins[i] != want[i] {
							t.Fatalf("bin %d: %d != %d", i, bins[i], want[i])
						}
					}
					if stats.Cycles <= 0 {
						t.Errorf("degenerate stats: %+v", stats)
					}
					return
				}
				out, stats, err := Run(m, art, img)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				want, err := pipe.Reference(img)
				if err != nil {
					t.Fatal(err)
				}
				if d := pixel.MaxAbsDiff(out, want); d != 0 {
					t.Errorf("simulated output deviates from the golden model by %g", d)
				}
				if stats.Cycles <= 0 || stats.Issued <= 0 {
					t.Errorf("degenerate stats: %+v", stats)
				}
			})
		}
	}
}
