package ipim

// Smoke test for the example binaries: every examples/* main must `go
// run` to completion with exit status 0. The examples are the public
// face of the repo and have no other coverage — without this they rot
// silently (an API rename breaks them and nothing notices).

import (
	"os"
	"os/exec"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run full simulations; skipped with -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no examples found")
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+name)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("examples/%s produced no output", name)
			}
		})
	}
}
