// Command ipim-bench regenerates the paper's evaluation tables and
// figures (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	ipim-bench                 # run everything at full bench sizes
//	ipim-bench -exp fig6       # one experiment
//	ipim-bench -div 4          # shrink images 4x for a quick pass
//	ipim-bench -json results.json   # machine-readable suite results
//	                                # (workload, config, cycles, ns,
//	                                # energy) for BENCH_*.json tracking
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ipim"
	"ipim/internal/cliutil"
	"ipim/internal/exp"
)

func main() {
	expName := flag.String("exp", "all", "experiment to run: all, "+strings.Join(exp.ExperimentNames(), ", "))
	div := flag.Int("div", 1, "divide bench image sizes by this factor (faster, same shapes)")
	jsonPath := flag.String("json", "", "write machine-readable Table II suite results to this file ('-' = stdout) and exit")
	jsonDNNPath := flag.String("json-dnn", "", "write machine-readable DNN/GEMM family results (baseline and multi-array schedules) to this file ('-' = stdout) and exit")
	faultSpec := flag.String("faults", "",
		"fault-injection spec applied to every simulated machine (empty = off; the faults sweep manages its own plans)")
	maxCycles := flag.Int64("max-cycles", 0,
		"hard per-run simulated-cycle budget for every experiment machine (0 = unlimited)")
	mode := flag.String("mode", "cycle",
		"execution mode for the Table II suite machines: cycle (full timing simulation) or functional (fast correctness pass; cycle-derived columns read zero)")
	flag.Parse()

	if *expName != "all" {
		if err := cliutil.Check("exp", *expName, exp.ExperimentNames()); err != nil {
			fmt.Fprintln(os.Stderr, "ipim-bench:", err)
			os.Exit(1)
		}
	}
	if err := cliutil.Check("mode", *mode, []string{"cycle", "functional"}); err != nil {
		fmt.Fprintln(os.Stderr, "ipim-bench:", err)
		os.Exit(1)
	}
	plan, err := ipim.ParseFaultPlan(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipim-bench:", err)
		os.Exit(1)
	}

	c := exp.NewContext()
	c.SizeDiv = *div
	c.Faults = plan
	c.MaxCycles = *maxCycles
	if *mode == "functional" {
		c.Mode = ipim.FunctionalMode
	}

	writeJSON := func(path string, collect func() ([]exp.BenchRecord, error)) {
		// Open the output before the ~15 s suite run so a bad path
		// fails immediately.
		out := os.Stdout
		if path != "-" {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ipim-bench:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		recs, err := collect()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipim-bench:", err)
			os.Exit(1)
		}
		if err := exp.WriteBenchJSON(out, recs); err != nil {
			fmt.Fprintln(os.Stderr, "ipim-bench:", err)
			os.Exit(1)
		}
	}
	if *jsonPath != "" {
		writeJSON(*jsonPath, c.BenchRecords)
		return
	}
	if *jsonDNNPath != "" {
		writeJSON(*jsonDNNPath, c.DNNBenchRecords)
		return
	}

	run := func(name string) error {
		t0 := time.Now()
		tb, err := c.ByName(name)
		if err != nil {
			return err
		}
		fmt.Print(tb.Format())
		fmt.Printf("(%s regenerated in %v)\n\n", name, time.Since(t0).Round(time.Millisecond))
		return nil
	}

	if *expName == "all" {
		for _, name := range exp.ExperimentNames() {
			if err := run(name); err != nil {
				fmt.Fprintln(os.Stderr, "ipim-bench:", err)
				os.Exit(1)
			}
		}
		return
	}
	if err := run(*expName); err != nil {
		fmt.Fprintln(os.Stderr, "ipim-bench:", err)
		os.Exit(1)
	}
}
