// Command ipim-serve runs the iPIM simulator as a long-lived image
// processing service: POST a binary PGM/PPM image to /v1/process and
// get the processed image back, with the simulated cycle, energy and
// host-transfer accounting in the response headers.
//
// Usage:
//
//	ipim-serve                                # :8080, one-vault machine
//	ipim-serve -addr :9000 -workers 4 -config tiny
//	curl -s --data-binary @in.pgm -o out.pgm \
//	  'localhost:8080/v1/process?workload=GaussianBlur&opts=opt'
//
// Observability: GET /healthz (liveness), GET /readyz (readiness:
// 503 while draining or degraded), GET /metrics (Prometheus text
// format), GET /v1/workloads, GET /v1/tune (background-tuning state
// and the stored winners). SIGINT/SIGTERM drains in-flight requests
// before exiting. POST /v1/simb runs raw SIMB assembly under the same
// deadline and -max-cycles budget machinery as /v1/process.
//
// With -tune-workers N, requests for an uncompiled (workload, size,
// opts) key are served with the default schedule while a background
// autotuner searches for a faster one; winners beating -tune-margin
// are swapped into the artifact cache (X-Ipim-Schedule: tuned) and
// recorded in -tune-db for future boots.
//
// With -router URL the process runs in fleet worker mode: it
// heartbeats its -advertise address into an ipim-router, which proxies
// /v1/process, /v1/simb and the multi-frame /v1/stream endpoint across
// the worker fleet by consistent hashing (see docs/OPERATIONS.md).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ipim"
	"ipim/internal/cliutil"
	"ipim/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("ipim-serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	cfgName := flag.String("config", "onevault", "machine config: default, onevault, tiny, tiny-onevault")
	workers := flag.Int("workers", max(2, runtime.GOMAXPROCS(0)/2), "pooled simulated machines")
	machinePar := flag.Int("machine-parallelism", 1,
		"per-phase simulation goroutines per machine (0 = GOMAXPROCS, 1 = serial; results identical either way)")
	queueCap := flag.Int("queue", 64, "dispatch queue capacity (full queue returns 429)")
	cacheCap := flag.Int("cache", 32, "compiled-artifact LRU capacity")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-request deadline")
	maxCycles := flag.Int64("max-cycles", 0,
		"hard per-run simulated-cycle budget; also caps the max_cycles query parameter (0 = unlimited)")
	watchdog := flag.Duration("watchdog", 250*time.Millisecond,
		"stuck-worker watchdog scan interval (negative = off)")
	maxBody := flag.Int64("max-body", 64<<20, "request body size limit in bytes")
	busName := flag.String("bus", "pcie3", "modeled host bus: pcie3, pcie5")
	drainWait := flag.Duration("drain-timeout", 30*time.Second,
		"graceful shutdown budget: in-flight jobs get this long to finish (journaled jobs checkpoint continuously and resume after restart)")
	ckptDir := flag.String("checkpoint-dir", "",
		"crash-recovery journal directory: in-flight jobs checkpoint here at phase barriers and resume after a crash or restart (empty = off)")
	ckptEvery := flag.Int64("checkpoint-every", 0,
		"minimum simulated-cycle spacing between journal checkpoints (0 = every barrier; needs -checkpoint-dir)")
	faultSpec := flag.String("faults", "",
		"fault-injection spec, e.g. seed=7,dram=1e-5,multibit=0.2,link=1e-6,exec=1e-4 (empty = off)")
	retries := flag.Int("retries", 2, "max in-place retries of a run hit by a transient injected fault (negative = off)")
	degrade := flag.Float64("degrade", 0,
		"degraded-mode threshold: mean uncorrected ECC errors per request that trips 503 load shedding (0 = off)")
	tuneWorkers := flag.Int("tune-workers", 0,
		"background schedule-tuning search workers (0 = tuning off)")
	tuneDB := flag.String("tune-db", "",
		"persistent tuning-results journal (JSONL, shared with ipim-tune -db; empty = memory-only)")
	tuneMargin := flag.Float64("tune-margin", 1.02,
		"minimum default/tuned cycle ratio before a tuned artifact replaces the cached default")
	routerURL := flag.String("router", "",
		"fleet worker mode: base URL of an ipim-router to heartbeat into (empty = standalone)")
	advertise := flag.String("advertise", "",
		"base URL the router should reach this worker at (default: http:// + the bound listen address)")
	heartbeat := flag.Duration("heartbeat", time.Second, "heartbeat interval in fleet worker mode")
	recoveryGrace := flag.Duration("recovery-grace", 30*time.Second,
		"how long /readyz reports 503 while boot-time journaled jobs await resume (negative = off)")
	streamMax := flag.Int("stream-max-frames", 1024, "max frames accepted per /v1/stream request")
	chaosStall := flag.Int("chaos-stream-stall", 0,
		"TESTING ONLY: stall the first stream forever after this many frames (0 = off)")
	flag.Parse()

	mcfg, err := ipim.ConfigByName(*cfgName)
	if err != nil {
		log.Fatal(err)
	}
	bus, err := cliutil.Bus(*busName)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := ipim.ParseFaultPlan(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	every, err := cliutil.CheckpointInterval(*ckptEvery, *ckptDir, "checkpoint-dir")
	if err != nil {
		log.Fatal(err)
	}

	// Bind before serve.New: fleet worker mode needs the resolved
	// listen address to derive the default advertise URL, and logging
	// the bound address lets harnesses use -addr 127.0.0.1:0.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *routerURL != "" && *advertise == "" {
		*advertise = "http://" + ln.Addr().String()
	}

	srv, err := serve.New(serve.Config{
		Machine:            mcfg,
		Workers:            *workers,
		MachineParallelism: *machinePar,
		QueueCap:           *queueCap,
		CacheCap:           *cacheCap,
		DefaultTimeout:     *timeout,
		MaxCycles:          *maxCycles,
		WatchdogInterval:   *watchdog,
		MaxBodyBytes:       *maxBody,
		Bus:                bus,
		Logger:             log.Default(),
		Faults:             plan,
		MaxRetries:         *retries,
		CheckpointDir:      *ckptDir,
		CheckpointEvery:    every,
		DegradeThreshold:   *degrade,
		TuneWorkers:        *tuneWorkers,
		TuneDB:             *tuneDB,
		TuneMargin:         *tuneMargin,
		RouterURL:          *routerURL,
		AdvertiseAddr:      *advertise,
		HeartbeatInterval:  *heartbeat,
		RecoveryGrace:      *recoveryGrace,
		StreamMaxFrames:    *streamMax,

		ChaosStreamStallAfterFrames: *chaosStall,
	})
	if err != nil {
		log.Fatal(err)
	}
	if plan.Enabled() {
		log.Printf("fault injection active: %s (retries %d, degrade threshold %g)",
			plan, *retries, *degrade)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	log.Printf("serving %s machine on %s (%d workers, queue %d, cache %d)",
		*cfgName, ln.Addr(), *workers, *queueCap, *cacheCap)
	if *routerURL != "" {
		log.Printf("fleet worker mode: heartbeating into %s as %s every %s",
			*routerURL, *advertise, *heartbeat)
	}

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down: draining for up to %s", *drainWait)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("pool drain: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("listener: %v", err)
	}
	log.Print("drained, bye")
}
