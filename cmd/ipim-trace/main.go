// Command ipim-trace runs a workload with instruction tracing enabled
// and prints a stall analysis: where the in-order control core loses
// cycles and to what (data hazards, DRAM queue pressure, barriers).
//
// Usage:
//
//	ipim-trace -workload GaussianBlur
//	ipim-trace -workload Shift -opts baseline1 -top 20
package main

import (
	"flag"
	"fmt"
	"log"

	"ipim"
	"ipim/internal/cliutil"
	"ipim/internal/compiler"
	"ipim/internal/cube"
	"ipim/internal/vault"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ipim-trace: ")
	name := flag.String("workload", "GaussianBlur", "Table II workload name")
	optName := flag.String("opts", "opt", "compiler config: opt, baseline1..baseline4")
	top := flag.Int("top", 12, "entries per ranking")
	flag.Parse()

	opts, err := cliutil.Options(*optName)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := cliutil.Workload(*name)
	if err != nil {
		log.Fatal(err)
	}
	cfg := ipim.OneVaultConfig()
	img := ipim.Synth(wl.BenchW, wl.BenchH, 5)
	pipe := wl.Build().Pipe
	art, err := ipim.Compile(&cfg, pipe, img.W, img.H, opts)
	if err != nil {
		log.Fatal(err)
	}
	m, err := cube.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tr := &vault.Tracer{}
	m.Vault(0, 0).SetTracer(tr)
	if err := compiler.LoadInput(m, art, img); err != nil {
		log.Fatal(err)
	}
	stats, err := compiler.Execute(m, art)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%s): %d cycles, IPC %.3f", wl.Name, opts.Name(), stats.Cycles, stats.IPC())
	if ff := m.FastForwardedCycles(); ff > 0 {
		// Skipped idle spans are reported as their own category (and per
		// entry in the digest below), never folded into a stall reason.
		fmt.Printf(", %d idle cycles fast-forwarded", ff)
	}
	fmt.Print("\n\n")
	fmt.Print(tr.Summary(art.Prog, *top))
}
