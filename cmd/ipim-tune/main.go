// Command ipim-tune searches the iPIM schedule space (tile shape, PGSM
// staging, DRAM page and scheduling policies) for a workload by
// compiling and cycle-simulating each candidate, printing the ranking —
// the empirical analogue of Halide's auto-scheduler for this backend.
//
// Usage:
//
//	ipim-tune                                # tune GaussianBlur, grid search
//	ipim-tune -workload Downsample -W 256 -H 128
//	ipim-tune -strategy hill -seed 0x7E57    # seeded local search
//	ipim-tune -workers 4 -db tune.jsonl      # parallel, persist the winner
//	ipim-tune -json                          # machine-readable report
//
// With -db, the winning schedule is appended to the JSONL results
// store that ipim-serve -tune-db reads, so offline tuning warms the
// serving daemon's lazy artifact upgrades.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ipim"
	"ipim/internal/autotune"
	"ipim/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ipim-tune: ")
	wlName := flag.String("workload", "GaussianBlur", "Table II workload to tune")
	cfgName := flag.String("config", "onevault", "machine config: default, onevault, tiny, tiny-onevault")
	width := flag.Int("W", 256, "probe image width")
	height := flag.Int("H", 128, "probe image height")
	strategy := flag.String("strategy", "grid", "search strategy: grid, hill")
	workers := flag.Int("workers", 1, "parallel evaluation workers (results identical at any setting)")
	seedSpec := flag.String("seed", "0x7E57", "probe image / search seed (decimal or 0x hex)")
	dbPath := flag.String("db", "", "results-store journal to record the winner in (JSONL; empty = don't persist)")
	jsonOut := flag.Bool("json", false, "emit the full report as JSON instead of the table")
	maxCycles := flag.Int64("max-cycles", 0, "per-candidate simulated-cycle budget (0 = unlimited)")
	flag.Parse()

	if err := cliutil.Check("strategy", *strategy, autotune.StrategyNames()); err != nil {
		log.Fatal(err)
	}
	seed, err := cliutil.Seed("seed", *seedSpec)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := cliutil.Workload(*wlName)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := ipim.ConfigByName(*cfgName)
	if err != nil {
		log.Fatal(err)
	}

	p := autotune.PipelineProblem(cfg, func() *ipim.Pipeline { return wl.Build().Pipe }, *width, *height)
	p.Seed = seed
	p.Label = wl.Name
	strat, err := autotune.NewStrategy(*strategy, autotune.DefaultSpace(), seed)
	if err != nil {
		log.Fatal(err)
	}
	eng := &autotune.Engine{Workers: *workers, MaxCycles: *maxCycles}
	report, err := eng.Search(context.Background(), p, strat)
	if err != nil {
		log.Fatal(err)
	}

	if *dbPath != "" {
		if err := persist(*dbPath, cfg, p, seed, report); err != nil {
			log.Fatal(err)
		}
	}

	if *jsonOut {
		emitJSON(wl.Name, *width, *height, seed, report)
		return
	}
	best := report.Best()
	fmt.Printf("schedule search (%s) for %s on %dx%d: %d candidates\n\n",
		report.Strategy, wl.Name, *width, *height, report.Evaluated)
	fmt.Printf("%-40s %12s %10s\n", "schedule", "cycles", "vs best")
	for _, r := range report.Results {
		if r.Err != nil {
			fmt.Printf("%-40s %12s %10s  (%v)\n", r.Candidate, "-", "-", r.Err)
			continue
		}
		fmt.Printf("%-40s %12d %9.2fx\n", r.Candidate, r.Cycles, float64(r.Cycles)/float64(best.Cycles))
	}
	fmt.Printf("\nbest schedule: %s (%d cycles)\n", best.Candidate, best.Cycles)
	if imp := report.Improvement(); imp > 0 {
		fmt.Printf("default schedule: %d cycles — winner is %.2fx faster\n",
			report.Default.Cycles, imp)
	}
}

// persist records the winner in the shared results store keyed exactly
// as ipim-serve keys its lookups.
func persist(path string, cfg ipim.Config, p autotune.Problem, seed uint64, report *autotune.Report) error {
	store, err := autotune.OpenStore(path)
	if err != nil {
		return err
	}
	defer store.Close()
	best := report.Best()
	rec := autotune.Record{
		Key:           autotune.KeyFor(&cfg, p.Opts, p.Default(), p.W, p.H),
		Label:         p.Label,
		Strategy:      report.Strategy,
		Seed:          seed,
		Best:          best.Candidate,
		BestCycles:    best.Cycles,
		DefaultCycles: report.Default.Cycles,
		Evaluated:     report.Evaluated,
		UpdatedUnix:   time.Now().Unix(),
	}
	if err := store.Put(rec); err != nil {
		return err
	}
	log.Printf("recorded winner in %s (%d live keys)", path, store.Len())
	return nil
}

// jsonResult is one candidate row of the -json report.
type jsonResult struct {
	Candidate autotune.Candidate `json:"candidate"`
	Schedule  string             `json:"schedule"`
	Cycles    int64              `json:"cycles,omitempty"`
	Error     string             `json:"error,omitempty"`
}

func emitJSON(workload string, w, h int, seed uint64, report *autotune.Report) {
	rows := make([]jsonResult, 0, len(report.Results))
	for _, r := range report.Results {
		row := jsonResult{Candidate: r.Candidate, Schedule: r.Candidate.String(), Cycles: r.Cycles}
		if r.Err != nil {
			row.Error = r.Err.Error()
		}
		rows = append(rows, row)
	}
	out := struct {
		Workload      string       `json:"workload"`
		W             int          `json:"w"`
		H             int          `json:"h"`
		Seed          uint64       `json:"seed"`
		Strategy      string       `json:"strategy"`
		Evaluated     int          `json:"evaluated"`
		DefaultCycles int64        `json:"default_cycles"`
		Improvement   float64      `json:"improvement"`
		Results       []jsonResult `json:"results"`
	}{workload, w, h, seed, report.Strategy, report.Evaluated,
		report.Default.Cycles, report.Improvement(), rows}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}
