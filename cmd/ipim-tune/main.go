// Command ipim-tune searches the iPIM schedule space (tile shape, PGSM
// staging) for a kernel by compiling and cycle-simulating each
// candidate, printing the ranking — the empirical analogue of Halide's
// auto-scheduler for this backend.
//
// Usage:
//
//	ipim-tune                      # tune the default blur kernel
//	ipim-tune -W 256 -H 128        # probe image size
package main

import (
	"flag"
	"fmt"
	"log"

	"ipim"
	"ipim/internal/halide"
	"ipim/internal/tune"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ipim-tune: ")
	width := flag.Int("W", 256, "probe image width")
	height := flag.Int("H", 128, "probe image height")
	flag.Parse()

	builder := func(c tune.Candidate) *halide.Pipeline {
		g := halide.SeparableGaussian("tg", nil, 1)
		if c.LoadPGSM {
			g.LoadPGSM()
		}
		return halide.NewPipeline("gauss", g).IPIMTile(c.TileW, c.TileH)
	}

	cfg := ipim.OneVaultConfig()
	results, err := tune.Search(cfg, builder, *width, *height, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule search for a radius-1 separable Gaussian on %dx%d:\n\n", *width, *height)
	fmt.Printf("%-24s %12s %10s\n", "schedule", "cycles", "vs best")
	best := results[0].Cycles
	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("%-24s %12s %10s  (%v)\n", r.Candidate, "-", "-", r.Err)
			continue
		}
		fmt.Printf("%-24s %12d %9.2fx\n", r.Candidate, r.Cycles, float64(r.Cycles)/float64(best))
	}
	fmt.Printf("\nbest schedule: %s\n", results[0].Candidate)
}
