// Command ipim-asm assembles and disassembles SIMB programs (paper
// Table I) and prints the ISA reference.
//
// Usage:
//
//	ipim-asm -table                 # print the SIMB ISA (Table I)
//	ipim-asm -a prog.simb           # assemble to binary on stdout
//	ipim-asm -d prog.bin            # disassemble binary to text
//	ipim-asm -roundtrip prog.simb   # assemble + disassemble (canonical form)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ipim/internal/isa"
)

// table1 mirrors the paper's Table I rows: category, mnemonics,
// description.
var table1 = []struct{ category, insns, desc string }{
	{"computation", "comp", "SIMD computation (vv/vs modes), FP/INT arithmetic and logic over 4x32b lanes"},
	{"index calculation", "calc_arf", "INT address calculation in the per-PE address register file"},
	{"intra-vault data movement", "st_rf / ld_rf", "store(/load) data to(/from) the bank from(/to) the DataRF"},
	{"", "st_pgsm / ld_pgsm", "store(/load) data to(/from) the bank from(/to) the PGSM"},
	{"", "rd_pgsm / wr_pgsm", "read(/write) data from(/to) the PGSM to(/from) the DataRF"},
	{"", "rd_vsm / wr_vsm", "read(/write) data from(/to) the VSM to(/from) the DataRF"},
	{"", "mov_drf / mov_arf", "move data between the DataRF and the AddrRF (lane select)"},
	{"", "seti_vsm", "set immediate value to a VSM location"},
	{"", "reset", "reset a DataRF entry to zero"},
	{"inter-vault data movement", "req", "request data from a remote vault into the local VSM"},
	{"control flow", "jump / cjump", "(conditional) jump via a CtrlRF-held target"},
	{"", "calc_crf", "control flow INT calculation"},
	{"", "seti_crf", "set immediate (or label) to a CtrlRF location"},
	{"synchronization", "sync", "inter-vault barrier with phase id (master-slave protocol)"},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ipim-asm: ")
	showTable := flag.Bool("table", false, "print the SIMB ISA reference (paper Table I)")
	asm := flag.String("a", "", "assemble text file to binary on stdout")
	dis := flag.String("d", "", "disassemble binary file to text on stdout")
	rt := flag.String("roundtrip", "", "assemble then disassemble (canonical form)")
	flag.Parse()

	switch {
	case *showTable:
		fmt.Println("SIMB (Single-Instruction-Multiple-Bank) ISA — paper Table I")
		fmt.Println()
		for _, r := range table1 {
			fmt.Printf("%-28s %-20s %s\n", r.category, r.insns, r.desc)
		}
	case *asm != "":
		src, err := os.ReadFile(*asm)
		if err != nil {
			log.Fatal(err)
		}
		p, err := isa.Assemble(string(src))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := os.Stdout.Write(isa.EncodeProgram(p)); err != nil {
			log.Fatal(err)
		}
	case *dis != "":
		data, err := os.ReadFile(*dis)
		if err != nil {
			log.Fatal(err)
		}
		p, err := isa.DecodeProgram(data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(isa.Disassemble(p))
	case *rt != "":
		src, err := os.ReadFile(*rt)
		if err != nil {
			log.Fatal(err)
		}
		p, err := isa.Assemble(string(src))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(isa.Disassemble(p))
	default:
		flag.Usage()
		os.Exit(2)
	}
}
