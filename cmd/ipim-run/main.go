// Command ipim-run executes one Table II workload end-to-end on the
// simulated machine, verifies it against the host golden model, and
// prints the run statistics.
//
// Usage:
//
//	ipim-run -workload GaussianBlur
//	ipim-run -workload Histogram -W 512 -H 256 -opts baseline1
//	ipim-run -workload Histogram -checkpoint run.ckpt   # ^C-safe
//	ipim-run -workload Histogram -resume run.ckpt       # continue it
//	ipim-run -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"ipim"
	"ipim/internal/cliutil"
	"ipim/internal/isa"
	"ipim/internal/pixel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ipim-run: ")
	name := flag.String("workload", "GaussianBlur", "Table II workload name")
	width := flag.Int("W", 0, "input width (0 = workload bench default)")
	height := flag.Int("H", 0, "input height (0 = workload bench default)")
	optName := flag.String("opts", "opt", "compiler config: opt, baseline1..baseline4")
	list := flag.Bool("list", false, "list workloads and exit")
	seed := flag.Uint64("seed", 1, "synthetic image seed")
	inFile := flag.String("in", "", "input PGM file (overrides -W/-H/-seed)")
	outFile := flag.String("out", "", "write the result as a PGM file")
	faultSpec := flag.String("faults", "",
		"fault-injection spec, e.g. seed=7,dram=1e-5,multibit=0.2,link=1e-6,exec=1e-4 (empty = off)")
	maxCycles := flag.Int64("max-cycles", 0,
		"abort the run after this many simulated cycles (0 = unlimited)")
	ckptFile := flag.String("checkpoint", "",
		"stream machine checkpoints to this file at phase barriers, so an interrupted run (^C) can continue with -resume")
	ckptEvery := flag.Int64("checkpoint-every", 0,
		"minimum simulated-cycle spacing between checkpoints (0 = every barrier; needs -checkpoint)")
	resumeFile := flag.String("resume", "",
		"resume an interrupted run from this checkpoint file (pass the same workload flags as the original run)")
	flag.Parse()

	if *list {
		for _, wl := range ipim.Workloads() {
			kind := "single-stage"
			if wl.MultiStage {
				kind = "multi-stage"
			}
			fmt.Printf("%-16s %-12s %s\n", wl.Name, kind, wl.Description)
		}
		return
	}

	opts, err := cliutil.Options(*optName)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := cliutil.Workload(*name)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := ipim.ParseFaultPlan(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	every, err := cliutil.CheckpointInterval(*ckptEvery, *ckptFile, "checkpoint")
	if err != nil {
		log.Fatal(err)
	}
	if err := cliutil.ResumeFile(*resumeFile); err != nil {
		log.Fatal(err)
	}
	w, h := wl.BenchW, wl.BenchH
	if *width > 0 {
		w = *width
	}
	if *height > 0 {
		h = *height
	}

	cfg := ipim.OneVaultConfig()
	var m *ipim.Machine
	if *resumeFile != "" {
		// The checkpoint carries the machine state, the interrupted
		// run's budget and the fault plan; -faults is ignored here.
		f, err := os.Open(*resumeFile)
		if err != nil {
			log.Fatal(err)
		}
		m, err = ipim.RestoreMachine(f, cfg)
		f.Close()
		if err != nil {
			log.Fatalf("-resume %s: %v", *resumeFile, err)
		}
		if !m.HasResume() {
			log.Fatalf("-resume %s: checkpoint carries no interrupted run", *resumeFile)
		}
		fmt.Printf("resuming interrupted run from %s\n", *resumeFile)
	} else {
		m, err = ipim.NewMachine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		m.SetFaultPlan(plan)
	}
	var img *ipim.Image
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			log.Fatal(err)
		}
		img, err = ipim.ReadPGM(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		w, h = img.W, img.H
	} else {
		img = ipim.Synth(w, h, *seed)
	}
	pipe := wl.Build().Pipe
	art, err := ipim.Compile(&cfg, pipe, w, h, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %dx%d (%s): %d SIMB instructions, %d spills\n",
		wl.Name, w, h, opts.Name(), len(art.Prog.Ins), art.Spills)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runOpts := ipim.RunOptions{MaxCycles: *maxCycles}
	if *ckptFile != "" {
		runOpts.CheckpointEvery = every
		runOpts.CheckpointSink = func(data []byte) error { return writeCheckpoint(*ckptFile, data) }
	}
	// fail reports a fatal run error; an interrupt (^C) under
	// checkpointing points at the resume command instead of just dying.
	fail := func(err error) {
		if errors.Is(err, ipim.ErrCancelled) && *ckptFile != "" {
			log.Fatalf("interrupted: %v\nresume with: -resume %s (plus the same workload flags)", err, *ckptFile)
		}
		log.Fatal(err)
	}

	var stats ipim.Stats
	var result *ipim.Image
	verified := false
	// Transient injected execution faults are retryable by contract:
	// rerun on the same machine (its fault counters have advanced). A
	// resumed run continues the checkpointed attempt first.
	const maxAttempts = 4
	if pipe.Histogram {
		var bins []int32
		for attempt := 1; ; attempt++ {
			var err error
			if m.HasResume() {
				bins, stats, err = ipim.ResumeHistogram(ctx, m, art, runOpts)
			} else {
				bins, stats, err = ipim.RunHistogramContext(ctx, m, art, img, runOpts)
			}
			if err == nil {
				break
			}
			if !errors.Is(err, ipim.ErrTransientFault) || attempt == maxAttempts {
				fail(err)
			}
			fmt.Printf("transient fault (attempt %d/%d): %v; retrying\n", attempt, maxAttempts, err)
		}
		want, err := pipe.ReferenceHistogram(img)
		if err != nil {
			log.Fatal(err)
		}
		verified = true
		for i := range want {
			if bins[i] != want[i] {
				verified = false
			}
		}
	} else {
		for attempt := 1; ; attempt++ {
			var err error
			if m.HasResume() {
				result, stats, err = ipim.ResumeRun(ctx, m, art, runOpts)
			} else {
				result, stats, err = ipim.RunContext(ctx, m, art, img, runOpts)
			}
			if err == nil {
				break
			}
			if !errors.Is(err, ipim.ErrTransientFault) || attempt == maxAttempts {
				fail(err)
			}
			fmt.Printf("transient fault (attempt %d/%d): %v; retrying\n", attempt, maxAttempts, err)
		}
		want, err := pipe.Reference(img)
		if err != nil {
			log.Fatal(err)
		}
		verified = pixel.MaxAbsDiff(result, want) == 0
	}
	if *outFile != "" && result != nil {
		f, err := os.Create(*outFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := ipim.WritePGM(f, result); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s (%dx%d)\n", *outFile, result.W, result.H)
	}
	switch {
	case verified:
		fmt.Println("verified against host golden model")
	case plan.Enabled():
		fmt.Println("output differs from the host golden model (expected: fault injection active)")
	default:
		fmt.Println("VERIFICATION FAILED: output differs from the host golden model")
		os.Exit(1)
	}
	if plan.Enabled() {
		fmt.Printf("faults (%s): %d ECC corrected, %d uncorrected, %d link retransmits (+%d flits)\n",
			plan, stats.DRAM.ECCCorrected, stats.DRAM.ECCUncorrected,
			stats.NoC.LinkFaults, stats.NoC.RetransmitFlits)
	}
	fmt.Printf("cycles: %d  issued: %d  IPC: %.3f\n", stats.Cycles, stats.Issued, stats.IPC())
	fmt.Println("instruction mix:")
	for cat := isa.Category(0); cat < isa.NumCategories; cat++ {
		fmt.Printf("  %-14s %6.2f%%\n", cat, stats.CategoryFraction(cat)*100)
	}
	fmt.Printf("DRAM: %d reads, %d writes, %d activates, %.1f%% row hits\n",
		stats.DRAM.Reads, stats.DRAM.Writes, stats.DRAM.Activates,
		100*float64(stats.DRAM.RowHits)/float64(max64(1, stats.DRAM.RowHits+stats.DRAM.RowMisses)))
	b := ipim.EnergyOf(&stats, cfg.TotalPEs(), cfg.TotalVaults())
	fmt.Printf("energy: %.4g mJ (PIM dies %.1f%%)\n", b.Total()*1e3, b.PIMDieFraction()*100)

	g, err := ipim.GPUBaseline(pipe, w, h)
	if err != nil {
		log.Fatal(err)
	}
	full := ipim.DefaultConfig()
	machineTime := float64(stats.Cycles) * 1e-9 / float64(full.TotalVaults())
	fmt.Printf("full-machine speedup over the V100 baseline: %.2fx; energy saving %.1f%%\n",
		g.TimeSec/machineTime, (1-b.Total()/g.EnergyJ)*100)
}

// writeCheckpoint atomically replaces path with one sealed checkpoint:
// temp file in the same directory, then rename, so ^C (or a crash)
// mid-write leaves the previous checkpoint intact, never a torn file.
func writeCheckpoint(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
