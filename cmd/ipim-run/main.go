// Command ipim-run executes one Table II workload end-to-end on the
// simulated machine, verifies it against the host golden model, and
// prints the run statistics.
//
// Usage:
//
//	ipim-run -workload GaussianBlur
//	ipim-run -workload Histogram -W 512 -H 256 -opts baseline1
//	ipim-run -list
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"ipim"
	"ipim/internal/cliutil"
	"ipim/internal/isa"
	"ipim/internal/pixel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ipim-run: ")
	name := flag.String("workload", "GaussianBlur", "Table II workload name")
	width := flag.Int("W", 0, "input width (0 = workload bench default)")
	height := flag.Int("H", 0, "input height (0 = workload bench default)")
	optName := flag.String("opts", "opt", "compiler config: opt, baseline1..baseline4")
	list := flag.Bool("list", false, "list workloads and exit")
	seed := flag.Uint64("seed", 1, "synthetic image seed")
	inFile := flag.String("in", "", "input PGM file (overrides -W/-H/-seed)")
	outFile := flag.String("out", "", "write the result as a PGM file")
	faultSpec := flag.String("faults", "",
		"fault-injection spec, e.g. seed=7,dram=1e-5,multibit=0.2,link=1e-6,exec=1e-4 (empty = off)")
	maxCycles := flag.Int64("max-cycles", 0,
		"abort the run after this many simulated cycles (0 = unlimited)")
	flag.Parse()

	if *list {
		for _, wl := range ipim.Workloads() {
			kind := "single-stage"
			if wl.MultiStage {
				kind = "multi-stage"
			}
			fmt.Printf("%-16s %-12s %s\n", wl.Name, kind, wl.Description)
		}
		return
	}

	opts, err := cliutil.Options(*optName)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := cliutil.Workload(*name)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := ipim.ParseFaultPlan(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	w, h := wl.BenchW, wl.BenchH
	if *width > 0 {
		w = *width
	}
	if *height > 0 {
		h = *height
	}

	cfg := ipim.OneVaultConfig()
	m, err := ipim.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m.SetFaultPlan(plan)
	if *maxCycles > 0 {
		m.SetBudget(ipim.RunOptions{MaxCycles: *maxCycles})
	}
	var img *ipim.Image
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			log.Fatal(err)
		}
		img, err = ipim.ReadPGM(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		w, h = img.W, img.H
	} else {
		img = ipim.Synth(w, h, *seed)
	}
	pipe := wl.Build().Pipe
	art, err := ipim.Compile(&cfg, pipe, w, h, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %dx%d (%s): %d SIMB instructions, %d spills\n",
		wl.Name, w, h, opts.Name(), len(art.Prog.Ins), art.Spills)

	var stats ipim.Stats
	var result *ipim.Image
	verified := false
	// Transient injected execution faults are retryable by contract:
	// rerun on the same machine (its fault counters have advanced).
	const maxAttempts = 4
	if pipe.Histogram {
		var bins []int32
		for attempt := 1; ; attempt++ {
			var err error
			bins, stats, err = ipim.RunHistogram(m, art, img)
			if err == nil {
				break
			}
			if !errors.Is(err, ipim.ErrTransientFault) || attempt == maxAttempts {
				log.Fatal(err)
			}
			fmt.Printf("transient fault (attempt %d/%d): %v; retrying\n", attempt, maxAttempts, err)
		}
		want, err := pipe.ReferenceHistogram(img)
		if err != nil {
			log.Fatal(err)
		}
		verified = true
		for i := range want {
			if bins[i] != want[i] {
				verified = false
			}
		}
	} else {
		for attempt := 1; ; attempt++ {
			var err error
			result, stats, err = ipim.Run(m, art, img)
			if err == nil {
				break
			}
			if !errors.Is(err, ipim.ErrTransientFault) || attempt == maxAttempts {
				log.Fatal(err)
			}
			fmt.Printf("transient fault (attempt %d/%d): %v; retrying\n", attempt, maxAttempts, err)
		}
		want, err := pipe.Reference(img)
		if err != nil {
			log.Fatal(err)
		}
		verified = pixel.MaxAbsDiff(result, want) == 0
	}
	if *outFile != "" && result != nil {
		f, err := os.Create(*outFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := ipim.WritePGM(f, result); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s (%dx%d)\n", *outFile, result.W, result.H)
	}
	switch {
	case verified:
		fmt.Println("verified against host golden model")
	case plan.Enabled():
		fmt.Println("output differs from the host golden model (expected: fault injection active)")
	default:
		fmt.Println("VERIFICATION FAILED: output differs from the host golden model")
		os.Exit(1)
	}
	if plan.Enabled() {
		fmt.Printf("faults (%s): %d ECC corrected, %d uncorrected, %d link retransmits (+%d flits)\n",
			plan, stats.DRAM.ECCCorrected, stats.DRAM.ECCUncorrected,
			stats.NoC.LinkFaults, stats.NoC.RetransmitFlits)
	}
	fmt.Printf("cycles: %d  issued: %d  IPC: %.3f\n", stats.Cycles, stats.Issued, stats.IPC())
	fmt.Println("instruction mix:")
	for cat := isa.Category(0); cat < isa.NumCategories; cat++ {
		fmt.Printf("  %-14s %6.2f%%\n", cat, stats.CategoryFraction(cat)*100)
	}
	fmt.Printf("DRAM: %d reads, %d writes, %d activates, %.1f%% row hits\n",
		stats.DRAM.Reads, stats.DRAM.Writes, stats.DRAM.Activates,
		100*float64(stats.DRAM.RowHits)/float64(max64(1, stats.DRAM.RowHits+stats.DRAM.RowMisses)))
	b := ipim.EnergyOf(&stats, cfg.TotalPEs(), cfg.TotalVaults())
	fmt.Printf("energy: %.4g mJ (PIM dies %.1f%%)\n", b.Total()*1e3, b.PIMDieFraction()*100)

	g, err := ipim.GPUBaseline(pipe, w, h)
	if err != nil {
		log.Fatal(err)
	}
	full := ipim.DefaultConfig()
	machineTime := float64(stats.Cycles) * 1e-9 / float64(full.TotalVaults())
	fmt.Printf("full-machine speedup over the V100 baseline: %.2fx; energy saving %.1f%%\n",
		g.TimeSec/machineTime, (1-b.Total()/g.EnergyJ)*100)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
