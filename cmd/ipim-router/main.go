// Command ipim-router fronts a fleet of ipim-serve workers: it routes
// requests by consistent hashing on the artifact key (so each worker's
// compile cache and autotune store shard naturally), fails over when a
// worker dies mid-request — including mid-stream, splicing the
// remaining frames from a surviving worker — and applies per-tenant
// admission control keyed on the X-Ipim-Tenant header.
//
// Usage:
//
//	ipim-router                                  # :8090
//	ipim-router -addr :8090 -tenants batch=1,interactive=4
//	ipim-serve -addr :8081 -router http://localhost:8090
//	ipim-serve -addr :8082 -router http://localhost:8090
//	curl -s --data-binary @in.pgm -H 'X-Ipim-Tenant: interactive' \
//	  'localhost:8090/v1/process?workload=GaussianBlur'
//
// Observability: GET /healthz, GET /readyz (503 with an empty ring),
// GET /metrics (ipim_router_* series), GET /fleet/workers (JSON worker
// states). Workers self-register via POST /fleet/register heartbeats;
// silent workers fall out of the ring after -worker-ttl and their keys
// rehash onto the survivors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ipim/internal/fleet"
)

// parseTenants parses "name=weight,name=weight" into tenant configs.
func parseTenants(spec string) ([]fleet.TenantConfig, error) {
	if spec == "" {
		return nil, nil
	}
	var out []fleet.TenantConfig
	for _, part := range strings.Split(spec, ",") {
		name, weightStr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("tenant spec %q: want name=weight", part)
		}
		weight, err := strconv.Atoi(weightStr)
		if err != nil || weight < 1 {
			return nil, fmt.Errorf("tenant spec %q: weight must be a positive integer", part)
		}
		out = append(out, fleet.TenantConfig{Name: name, Weight: weight})
	}
	return out, nil
}

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("ipim-router: ")

	addr := flag.String("addr", ":8090", "listen address")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per worker on the hash ring (0 = default)")
	workerTTL := flag.Duration("worker-ttl", 3*time.Second,
		"heartbeat TTL: a worker silent this long falls out of the ring")
	sweep := flag.Duration("sweep", 500*time.Millisecond, "TTL sweep interval")
	failovers := flag.Int("failovers", 2, "max mid-request failover attempts before 502")
	maxInflight := flag.Int("max-inflight", 64, "global admitted-request cap")
	queueCap := flag.Int("tenant-queue", 64, "per-tenant admission queue capacity (full = 429)")
	tenantSpec := flag.String("tenants", "",
		"weighted tenants, e.g. batch=1,interactive=4 (unlisted tenants share the weight-1 default)")
	maxBody := flag.Int64("max-body", 64<<20, "request body size limit in bytes")
	drainWait := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	flag.Parse()

	tenants, err := parseTenants(*tenantSpec)
	if err != nil {
		log.Fatal(err)
	}

	rt := fleet.New(fleet.Config{
		Vnodes:           *vnodes,
		WorkerTTL:        *workerTTL,
		SweepInterval:    *sweep,
		FailoverAttempts: *failovers,
		MaxInflight:      *maxInflight,
		TenantQueueCap:   *queueCap,
		Tenants:          tenants,
		MaxBodyBytes:     *maxBody,
		Logger:           log.Default(),
	})
	defer rt.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	log.Printf("routing on %s (ttl %s, %d failovers, %d inflight)",
		ln.Addr(), *workerTTL, *failovers, *maxInflight)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down: draining for up to %s", *drainWait)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("listener: %v", err)
	}
	log.Print("drained, bye")
}
