package ipim

import (
	"fmt"
	"sync"
	"testing"

	"ipim/internal/pixel"
)

// TestMachinesRunConcurrently pins down the machine concurrency
// contract the serving daemon depends on (see NewMachine): a compiled
// Artifact and an input image are read-only at run time, so the same
// artifact may execute on many distinct Machines in parallel — and
// must produce identical output on each. Run under -race this also
// proves no shared mutable state leaks between machines.
func TestMachinesRunConcurrently(t *testing.T) {
	cfg := TinyConfig()
	wl, err := WorkloadByName("GaussianBlur")
	if err != nil {
		t.Fatal(err)
	}
	img := Synth(wl.TestW, wl.TestH, 11)
	art, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}

	const nMachines = 4
	outs := make([]*Image, nMachines)
	var wg sync.WaitGroup
	for i := 0; i < nMachines; i++ {
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, m *Machine) {
			defer wg.Done()
			// Each machine runs the shared artifact twice, so
			// back-to-back runs on one machine interleave with runs on
			// the others.
			for rep := 0; rep < 2; rep++ {
				out, stats, err := Run(m, art, img)
				if err != nil {
					t.Errorf("machine %d rep %d: %v", i, rep, err)
					return
				}
				if stats.Cycles <= 0 {
					t.Errorf("machine %d rep %d: nonpositive cycles", i, rep)
				}
				outs[i] = out
			}
		}(i, m)
	}
	wg.Wait()

	want, err := wl.Build().Pipe.Reference(img)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if out == nil {
			t.Fatalf("machine %d produced no output", i)
		}
		if d := pixel.MaxAbsDiff(out, want); d != 0 {
			t.Errorf("machine %d deviates from the golden model by %g", i, d)
		}
		if i > 0 {
			if err := sameImage(outs[0], out); err != nil {
				t.Errorf("machine %d differs from machine 0: %v", i, err)
			}
		}
	}
}

// TestMachineReuseReportsPerRunStats pins the other half of the
// pooled-worker contract: a reused Machine reports per-run stats, not
// counters accumulated since its creation. (The vaults do accumulate
// internally; Machine.Run must return the delta.)
func TestMachineReuseReportsPerRunStats(t *testing.T) {
	cfg := TinyConfig()
	wl, err := WorkloadByName("GaussianBlur")
	if err != nil {
		t.Fatal(err)
	}
	img := Synth(wl.TestW, wl.TestH, 11)
	art, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var first Stats
	for rep := 0; rep < 4; rep++ {
		_, stats, err := Run(m, art, img)
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if rep == 0 {
			first = stats
			continue
		}
		// DRAM page/refresh state legitimately shifts cycles a little
		// between runs; accumulation would double them by rep 1 and
		// quadruple them by rep 3.
		if stats.Cycles <= 0 || stats.Cycles >= 2*first.Cycles {
			t.Errorf("rep %d: %d cycles vs %d on the fresh machine — stats accumulated across runs?",
				rep, stats.Cycles, first.Cycles)
		}
		if stats.Issued != first.Issued {
			t.Errorf("rep %d: issued %d != %d — same program must issue the same instructions",
				rep, stats.Issued, first.Issued)
		}
	}
}

func sameImage(a, b *Image) error {
	if a.W != b.W || a.H != b.H {
		return fmt.Errorf("dims %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			return fmt.Errorf("pixel %d: %g vs %g", i, a.Pix[i], b.Pix[i])
		}
	}
	return nil
}
