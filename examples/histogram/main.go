// Histogram: the paper's value-dependent benchmark. The iPIM schedule
// builds PGSM-resident partial histograms per process engine, merges
// them across the process group through the scratchpad, then across the
// vault through the VSM (paper Sec. VII-B) — the pattern that earns the
// paper's largest speedup (43.78x) over the GPU's atomic-bound
// schedule.
package main

import (
	"fmt"
	"log"

	"ipim"
	"ipim/internal/isa"
)

func main() {
	wl, err := ipim.WorkloadByName("Histogram")
	if err != nil {
		log.Fatal(err)
	}
	pipe := wl.Build().Pipe
	cfg := ipim.OneVaultConfig()
	m, err := ipim.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	img := ipim.Synth(wl.BenchW, wl.BenchH, 99)
	art, err := ipim.Compile(&cfg, pipe, img.W, img.H, ipim.Opt)
	if err != nil {
		log.Fatal(err)
	}
	bins, stats, err := ipim.RunHistogram(m, art, img)
	if err != nil {
		log.Fatal(err)
	}

	want, err := pipe.ReferenceHistogram(img)
	if err != nil {
		log.Fatal(err)
	}
	exact := true
	var total int32
	for i := range bins {
		if bins[i] != want[i] {
			exact = false
		}
		total += bins[i]
	}
	fmt.Printf("256-bin histogram of %dx%d image: %d pixels counted, matches reference: %v\n",
		img.W, img.H, total, exact)

	// Sparkline of the distribution.
	marks := []rune(" .:-=+*#%@")
	var maxBin int32
	for _, b := range bins {
		if b > maxBin {
			maxBin = b
		}
	}
	line := make([]rune, 64)
	for i := range line {
		var sum int32
		for j := 0; j < 4; j++ {
			sum += bins[i*4+j]
		}
		line[i] = marks[int(int64(sum)*int64(len(marks)-1)/int64(4*maxBin))]
	}
	fmt.Printf("distribution: |%s|\n", string(line))

	fmt.Printf("cycles: %d  IPC: %.2f\n", stats.Cycles, stats.IPC())
	fmt.Println("instruction mix:")
	for cat := isa.Category(0); cat < isa.NumCategories; cat++ {
		fmt.Printf("  %-14s %5.1f%%\n", cat, stats.CategoryFraction(cat)*100)
	}

	g, err := ipim.GPUBaseline(pipe, img.W, img.H)
	if err != nil {
		log.Fatal(err)
	}
	full := ipim.DefaultConfig()
	machineTime := float64(stats.Cycles) * 1e-9 / float64(full.TotalVaults())
	fmt.Printf("full-machine speedup over the V100 baseline: %.1fx (paper: 43.78x)\n",
		g.TimeSec/machineTime)
}
