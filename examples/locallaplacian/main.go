// LocalLaplacian: the paper's deepest heterogeneous pipeline (~20
// materialized stages here: remapping curves, Gaussian pyramids,
// per-level guide-weighted blends and a collapse). Demonstrates
// multi-stage execution with inter-PE halo exchange through the VSM and
// the per-stage sync barriers.
package main

import (
	"fmt"
	"log"

	"ipim"
	"ipim/internal/pixel"
	"ipim/internal/sim"
)

func main() {
	wl, err := ipim.WorkloadByName("LocalLaplacian")
	if err != nil {
		log.Fatal(err)
	}
	pipe := wl.Build().Pipe
	stages, err := pipe.Stages()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LocalLaplacian: %d materialized stages, tile %dx%d, clamped-stage halo exchange\n",
		len(stages), pipe.TileW, pipe.TileH)

	cfg := ipim.OneVaultConfig()
	m, err := ipim.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	img := ipim.Synth(wl.BenchW, wl.BenchH, 2026)
	art, err := ipim.Compile(&cfg, pipe, img.W, img.H, ipim.Opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled to %d SIMB instructions\n", len(art.Prog.Ins))

	got, stats, err := ipim.Run(m, art, img)
	if err != nil {
		log.Fatal(err)
	}
	want, err := pipe.Reference(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matches host reference: %v\n", pixel.MaxAbsDiff(got, want) == 0)
	fmt.Printf("cycles: %d  IPC: %.2f  syncs: %d  remote reqs: %d\n",
		stats.Cycles, stats.IPC(), stats.Syncs, stats.RemoteReqs)
	fmt.Printf("stall breakdown: data %.1f%%  dramQ %.1f%%  sync %.1f%%\n",
		pct(stats.StallCycles[sim.StallData], stats.Cycles),
		pct(stats.StallCycles[sim.StallDRAMQueue], stats.Cycles),
		pct(stats.StallCycles[sim.StallSync], stats.Cycles))
	b := ipim.EnergyOf(&stats, cfg.TotalPEs(), cfg.TotalVaults())
	fmt.Printf("energy: %.3g mJ, %.1f%% on the PIM dies\n", b.Total()*1e3, b.PIMDieFraction()*100)
}

func pct(a, b int64) float64 { return 100 * float64(a) / float64(b) }
