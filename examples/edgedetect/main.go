// Edge detection built from the DSL's filter-block library: a separable
// Gaussian (materialized stage, PGSM-staged, halo-exchanged) feeding a
// Sobel gradient magnitude and a threshold — a three-stage
// heterogeneous pipeline in a dozen lines, verified bit-exactly against
// the host reference and written out as PGM images.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ipim"
	"ipim/internal/halide"
	"ipim/internal/pixel"
)

func main() {
	// Pipeline: blur -> |grad| -> threshold.
	blur := halide.SeparableGaussian("blur", nil, 1).ComputeRoot().LoadPGSM()
	grad := halide.SobelMag("grad", blur).ComputeRoot().LoadPGSM()
	edges := halide.Threshold("edges", grad, 0.25)
	pipe := halide.NewPipeline("edgedetect", edges).ClampStages()

	cfg := ipim.OneVaultConfig()
	m, err := ipim.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	img := ipim.Synth(512, 256, 77)
	art, err := ipim.Compile(&cfg, pipe, img.W, img.H, ipim.Opt)
	if err != nil {
		log.Fatal(err)
	}
	out, stats, err := ipim.Run(m, art, img)
	if err != nil {
		log.Fatal(err)
	}
	want, err := pipe.Reference(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-stage edge detector on %dx%d: %d cycles, IPC %.2f, bit-exact: %v\n",
		img.W, img.H, stats.Cycles, stats.IPC(), pixel.MaxAbsDiff(out, want) == 0)

	edgeFrac := out.Mean()
	fmt.Printf("edge pixels: %.1f%% of the frame\n", edgeFrac*100)

	dir := os.TempDir()
	for name, im := range map[string]*ipim.Image{
		"ipim-edges-in.pgm":  img,
		"ipim-edges-out.pgm": out,
	} {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := ipim.WritePGM(f, im); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Println("wrote", path)
	}
}
