// Color pipeline: RGB images run as three independent planes — the way
// the paper's grayscale-plane workloads extend to color. This example
// tone-maps a synthetic color image with the LocalLaplacian-style
// pipeline per plane and writes before/after PPMs.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ipim"
)

func main() {
	wl, err := ipim.WorkloadByName("GaussianBlur")
	if err != nil {
		log.Fatal(err)
	}
	cfg := ipim.OneVaultConfig()

	// Synthetic color input: three decorrelated planes.
	w, h := 512, 256
	planes := [3]*ipim.Image{
		ipim.Synth(w, h, 101), ipim.Synth(w, h, 102), ipim.Synth(w, h, 103),
	}
	var out [3]*ipim.Image
	var totalCycles int64
	for i, plane := range planes {
		pipe := wl.Build().Pipe // fresh pipeline per plane
		art, err := ipim.Compile(&cfg, pipe, w, h, ipim.Opt)
		if err != nil {
			log.Fatal(err)
		}
		m, err := ipim.NewMachine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, stats, err := ipim.Run(m, art, plane)
		if err != nil {
			log.Fatal(err)
		}
		out[i] = res
		totalCycles += stats.Cycles
	}

	dir := os.TempDir()
	writePPM := func(name string, p [3]*ipim.Image) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := ipim.WritePPM(f, p[0], p[1], p[2]); err != nil {
			log.Fatal(err)
		}
		return path
	}
	in := writePPM("ipim-color-in.ppm", planes)
	res := writePPM("ipim-color-out.ppm", out)
	fmt.Printf("blurred a %dx%d RGB image as three planes in %d simulated cycles\n", w, h, totalCycles)
	fmt.Printf("wrote %s and %s\n", in, res)

	// Round-trip sanity: reread the output.
	f, err := os.Open(res)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r2, _, _, err := ipim.ReadPPM(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output PPM verified: %dx%d, corner value %.3f\n", r2.W, r2.H, r2.At(0, 0))
}
