// Compiler optimization ablation (paper Fig. 12): run the same kernel
// under the five backend configurations — min/max register allocation,
// with/without instruction reordering and memory order enforcement —
// and report the speedups over the naive baseline.
package main

import (
	"fmt"
	"log"

	"ipim"
)

func main() {
	wl, err := ipim.WorkloadByName("GaussianBlur")
	if err != nil {
		log.Fatal(err)
	}
	cfg := ipim.OneVaultConfig()
	img := ipim.Synth(wl.BenchW, wl.BenchH, 3)

	configs := []ipim.Options{
		ipim.Baseline1, ipim.Baseline2, ipim.Baseline3, ipim.Baseline4, ipim.Opt,
	}
	var base int64
	fmt.Printf("%-12s %-28s %12s %10s\n", "config", "(regalloc/reorder/memorder)", "cycles", "speedup")
	for _, o := range configs {
		pipe := wl.Build().Pipe
		art, err := ipim.Compile(&cfg, pipe, img.W, img.H, o)
		if err != nil {
			log.Fatal(err)
		}
		m, err := ipim.NewMachine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		_, stats, err := ipim.Run(m, art, img)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = stats.Cycles
		}
		pol := "min"
		if o.RegAllocMax {
			pol = "max"
		}
		fmt.Printf("%-12s %-28s %12d %9.2fx\n",
			o.Name(),
			fmt.Sprintf("%s / %v / %v", pol, o.Reorder, o.MemOrder),
			stats.Cycles,
			float64(base)/float64(stats.Cycles))
	}
	fmt.Println("\npaper: the combined optimizations deliver 3.19x over baseline1 on average")
}
