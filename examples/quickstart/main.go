// Quickstart: define a pipeline in the Halide-style DSL, compile it for
// iPIM with the paper's schedules, run it on the simulated near-bank
// machine, and check the result against the host reference.
package main

import (
	"fmt"
	"log"

	"ipim"
	"ipim/internal/halide"
	"ipim/internal/pixel"
)

func main() {
	// Algorithm (Listing 1 of the paper): a separable 3x3 blur. blurx
	// is inlined into out; out is one materialized kernel.
	blurx := halide.NewFunc("blurx").Define(
		halide.Mul(halide.Add(halide.Add(halide.In(-1, 0), halide.In(0, 0)), halide.In(1, 0)),
			halide.K(1.0/3)))
	out := halide.NewFunc("out").Define(
		halide.Mul(halide.Add(halide.Add(blurx.At(0, -1), blurx.At(0, 0)), blurx.At(0, 1)),
				halide.K(1.0/3))).
		LoadPGSM() // the paper's load_pgsm(xi, yi) schedule

	// Schedule: ipim_tile(x, y, xi, yi, 8, 8) + vectorize(xi, 4) are
	// the pipeline defaults.
	pipe := halide.NewPipeline("quickstart-blur", out)

	// One full vault: 8 process groups x 4 process engines.
	cfg := ipim.OneVaultConfig()
	m, err := ipim.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}

	img := ipim.Synth(512, 256, 42)
	art, err := ipim.Compile(&cfg, pipe, img.W, img.H, ipim.Opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d SIMB instructions (%d register spills)\n",
		len(art.Prog.Ins), art.Spills)

	got, stats, err := ipim.Run(m, art, img)
	if err != nil {
		log.Fatal(err)
	}

	want, err := pipe.Reference(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output matches host reference: %v\n", pixel.MaxAbsDiff(got, want) == 0)
	fmt.Printf("cycles: %d  IPC: %.2f\n", stats.Cycles, stats.IPC())
	fmt.Printf("DRAM: %d reads, %d writes, %.1f%% row hits\n",
		stats.DRAM.Reads, stats.DRAM.Writes,
		100*float64(stats.DRAM.RowHits)/float64(stats.DRAM.RowHits+stats.DRAM.RowMisses))
	b := ipim.EnergyOf(&stats, cfg.TotalPEs(), cfg.TotalVaults())
	fmt.Printf("energy: %.3g mJ (%.1f%% on the PIM dies)\n",
		b.Total()*1e3, b.PIMDieFraction()*100)
}
