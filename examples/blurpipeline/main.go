// Blur pipeline study: the same Gaussian blur under different iPIM
// schedules — with and without load_pgsm staging, and across tile sizes
// — showing how the paper's schedule primitives trade DRAM traffic
// against scratchpad usage.
package main

import (
	"fmt"
	"log"

	"ipim"
	"ipim/internal/halide"
	"ipim/internal/pixel"
)

func buildBlur(pgsm bool, tile int) *halide.Pipeline {
	blurx := halide.NewFunc("blurx").Define(
		halide.Mul(halide.Add(halide.Add(halide.In(0, 0), halide.In(1, 0)), halide.In(2, 0)),
			halide.K(1.0/3)))
	out := halide.NewFunc("blur").Define(
		halide.Mul(halide.Add(halide.Add(blurx.At(0, 0), blurx.At(0, 1)), blurx.At(0, 2)),
			halide.K(1.0/3)))
	if pgsm {
		out.LoadPGSM()
	}
	return halide.NewPipeline("blur", out).IPIMTile(tile, tile)
}

func main() {
	cfg := ipim.OneVaultConfig()
	img := ipim.Synth(512, 256, 7)
	type variant struct {
		name string
		pipe *halide.Pipeline
	}
	variants := []variant{
		{"tile 8x8 + load_pgsm", buildBlur(true, 8)},
		{"tile 8x8, bank only", buildBlur(false, 8)},
		{"tile 16x16 + load_pgsm", buildBlur(true, 16)},
	}
	fmt.Printf("%-24s %12s %10s %12s %12s %10s\n",
		"schedule", "cycles", "IPC", "DRAM reads", "PGSM acc", "rowhit%")
	var golden *pixel.Image
	for _, v := range variants {
		art, err := ipim.Compile(&cfg, v.pipe, img.W, img.H, ipim.Opt)
		if err != nil {
			log.Fatal(err)
		}
		m, err := ipim.NewMachine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		out, stats, err := ipim.Run(m, art, img)
		if err != nil {
			log.Fatal(err)
		}
		if golden == nil {
			golden, err = v.pipe.Reference(img)
			if err != nil {
				log.Fatal(err)
			}
		}
		if pixel.MaxAbsDiff(out, golden) != 0 {
			log.Fatalf("%s: output diverged from reference", v.name)
		}
		fmt.Printf("%-24s %12d %10.2f %12d %12d %9.1f%%\n",
			v.name, stats.Cycles, stats.IPC(), stats.DRAM.Reads, stats.PGSMAcc,
			100*float64(stats.DRAM.RowHits)/float64(stats.DRAM.RowHits+stats.DRAM.RowMisses))
	}
	fmt.Println("\nall variants verified bit-exact against the host reference")
}
