package ipim

// The benchmark harness: one testing.B benchmark per table and figure
// of the paper's evaluation (Sec. VII). Each benchmark regenerates its
// experiment through the internal/exp harness and reports the headline
// quantity the paper cites as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Figures that sweep many simulations
// (Fig. 10, Fig. 12) run at SizeDiv=4 (images shrunk 4x; identical
// shapes); `ipim-bench` regenerates everything at full size. See
// EXPERIMENTS.md for the paper-vs-measured record.

import (
	"testing"

	"ipim/internal/compiler"
	"ipim/internal/energy"
	"ipim/internal/exp"
	"ipim/internal/isa"
	"ipim/internal/sim"
)

// expBench runs one experiment per iteration and reports a metric.
func expBench(b *testing.B, name string, sizeDiv int, metric string, metricOf func(*exp.Table) float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		c := exp.NewContext()
		c.SizeDiv = sizeDiv
		tb, err := c.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(metricOf(tb), metric)
		}
	}
}

// --- Tables ---

// BenchmarkTable1ISA exercises the SIMB ISA (paper Table I): assembler,
// disassembler and binary codec round trip.
func BenchmarkTable1ISA(b *testing.B) {
	src := `
top:
seti_crf c0, =top
calc_arf iadd a4, a0, #64, sm=*
ld_rf d0, @a4, sm=*
comp fmac vv d1, d0, d0, vm=0xf, sm=*
st_rf d1, 0x100, sm=*
sync 0
`
	for i := 0; i < b.N; i++ {
		p, err := isa.Assemble(src)
		if err != nil {
			b.Fatal(err)
		}
		data := isa.EncodeProgram(p)
		q, err := isa.DecodeProgram(data)
		if err != nil {
			b.Fatal(err)
		}
		_ = isa.Disassemble(q)
	}
}

// BenchmarkTable2Workloads compiles the full Table II suite.
func BenchmarkTable2Workloads(b *testing.B) {
	cfg := OneVaultConfig()
	for i := 0; i < b.N; i++ {
		var instrs int
		for _, wl := range Workloads() {
			w := wl.Build()
			art, err := Compile(&cfg, w.Pipe, wl.BenchW, wl.BenchH, Opt)
			if err != nil {
				b.Fatal(err)
			}
			instrs += len(art.Prog.Ins)
		}
		if i == 0 {
			b.ReportMetric(float64(instrs), "SIMB-instructions")
		}
	}
}

// BenchmarkTable3Machine builds the full Table III machine (8 cubes x
// 16 vaults x 8 PGs x 4 PEs).
func BenchmarkTable3Machine(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		m, err := NewMachine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(cfg.TotalPEs()), "PEs")
		}
		_ = m
	}
}

// BenchmarkTable4Area regenerates the area evaluation (paper: 10.28 mm²,
// 10.71% overhead per DRAM die).
func BenchmarkTable4Area(b *testing.B) {
	expBench(b, "table4", 1, "overhead-pct", func(t *exp.Table) float64 {
		return t.Rows[len(t.Rows)-1].Values[2]
	})
}

// --- Figures ---

// BenchmarkFig1GPUProfile regenerates the GPU motivation profile
// (paper: 57.55% DRAM util vs 3.43% ALU util).
func BenchmarkFig1GPUProfile(b *testing.B) {
	expBench(b, "fig1", 1, "avg-dram-util-pct", func(t *exp.Table) float64 {
		return t.Mean(1)
	})
}

// BenchmarkFig6Speedup regenerates the headline comparison (paper:
// 11.02x average speedup over the V100).
func BenchmarkFig6Speedup(b *testing.B) {
	expBench(b, "fig6", 1, "avg-speedup", func(t *exp.Table) float64 {
		return t.Mean(2)
	})
}

// BenchmarkFig7Energy regenerates the energy comparison (paper: 79.49%
// average saving).
func BenchmarkFig7Energy(b *testing.B) {
	expBench(b, "fig7", 1, "avg-saving-pct", func(t *exp.Table) float64 {
		return t.Mean(2)
	})
}

// BenchmarkFig8PonB regenerates the near-bank vs process-on-base-die
// comparison (paper: 3.61x speedup).
func BenchmarkFig8PonB(b *testing.B) {
	expBench(b, "fig8", 4, "avg-speedup", func(t *exp.Table) float64 {
		return t.Mean(2)
	})
}

// BenchmarkFig9EnergyBreakdown regenerates the energy decomposition
// (paper: 89.17% of energy on the PIM dies).
func BenchmarkFig9EnergyBreakdown(b *testing.B) {
	expBench(b, "fig9", 1, "pim-die-pct", func(t *exp.Table) float64 {
		return t.Mean(6)
	})
}

// BenchmarkFig10RFSensitivity regenerates the DataRF sweep (paper:
// 46.8%/26.8%/9.5% drops for 16/32/64 entries vs 128).
func BenchmarkFig10RFSensitivity(b *testing.B) {
	expBench(b, "fig10a", 4, "rf16-slowdown", func(t *exp.Table) float64 {
		return t.Mean(0)
	})
}

// BenchmarkFig10PGSMSensitivity regenerates the scratchpad sweep
// (paper: 58.9%/39.0% drops for 2KB/4KB vs 8KB).
func BenchmarkFig10PGSMSensitivity(b *testing.B) {
	expBench(b, "fig10b", 4, "pgsm2k-slowdown", func(t *exp.Table) float64 {
		return t.Mean(0)
	})
}

// BenchmarkFig11InstMix regenerates the instruction breakdown (paper:
// index calculation 23.25% of dynamic instructions).
func BenchmarkFig11InstMix(b *testing.B) {
	expBench(b, "fig11", 1, "index-calc-pct", func(t *exp.Table) float64 {
		return t.Mean(1)
	})
}

// BenchmarkFig12Compiler regenerates the compiler ablation (paper:
// 3.19x for opt over baseline1).
func BenchmarkFig12Compiler(b *testing.B) {
	expBench(b, "fig12", 4, "opt-speedup", func(t *exp.Table) float64 {
		return t.Mean(3)
	})
}

// BenchmarkFig13IPC regenerates the IPC/utilization analysis (paper:
// average IPC 0.63).
func BenchmarkFig13IPC(b *testing.B) {
	expBench(b, "fig13", 1, "avg-ipc", func(t *exp.Table) float64 {
		return t.Mean(0)
	})
}

// BenchmarkThermal regenerates the thermal feasibility analysis
// (paper Sec. VII-B: 63 W/cube peak, 593 mW/mm²).
func BenchmarkThermal(b *testing.B) {
	expBench(b, "thermal", 4, "peak-W-per-cube", func(t *exp.Table) float64 {
		var m float64
		for _, r := range t.Rows {
			if r.Values[0] > m {
				m = r.Values[0]
			}
		}
		return m
	})
}

// BenchmarkDRAMPolicy regenerates the page/scheduling policy ablation
// (Sec. IV-E controller features; Table III defaults).
func BenchmarkDRAMPolicy(b *testing.B) {
	expBench(b, "dram", 4, "closepage-slowdown", func(t *exp.Table) float64 {
		return t.Mean(2)
	})
}

// BenchmarkScaling regenerates the multi-vault scaling validation
// behind the representative-vault extrapolation (DESIGN.md §2).
func BenchmarkScaling(b *testing.B) {
	expBench(b, "scaling", 4, "eff-4v", func(t *exp.Table) float64 {
		return t.Mean(4)
	})
}

// BenchmarkOffload regenerates the PCIe offload analysis (paper
// Sec. VI system integration).
func BenchmarkOffload(b *testing.B) {
	expBench(b, "offload", 4, "xfer-share-pct", func(t *exp.Table) float64 {
		return t.Mean(2)
	})
}

// BenchmarkExchangeAblation regenerates the halo-strategy comparison
// (overlapped recompute vs PGSM/VSM exchange; DESIGN.md §2).
func BenchmarkExchangeAblation(b *testing.B) {
	expBench(b, "exchange", 1, "chain8-speedup", func(t *exp.Table) float64 {
		return t.Rows[len(t.Rows)-1].Values[2]
	})
}

// --- Component micro-benchmarks ---

// BenchmarkSimulatorVault measures raw simulation throughput: simulated
// SIMB instructions per second for a streaming kernel on one vault.
func BenchmarkSimulatorVault(b *testing.B) {
	cfg := OneVaultConfig()
	wl, err := WorkloadByName("Brighten")
	if err != nil {
		b.Fatal(err)
	}
	img := Synth(wl.BenchW, wl.BenchH, 1)
	pipe := wl.Build().Pipe
	art, err := Compile(&cfg, pipe, img.W, img.H, Opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var issued int64
	for i := 0; i < b.N; i++ {
		m, err := NewMachine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_, stats, err := Run(m, art, img)
		if err != nil {
			b.Fatal(err)
		}
		issued += stats.Issued
	}
	b.ReportMetric(float64(issued)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// BenchmarkFullMachineRunSame measures wall-clock simulation time for
// the full 128-vault Table III machine running the same single-vault
// program on every vault, serial vs parallel (Machine.SetParallelism).
// The two runs produce bit-identical sim.Stats (pinned by
// determinism_test.go); this benchmark exists to quantify the speedup,
// which scales with physical cores — on a single-core host the two
// configurations time alike.
func BenchmarkFullMachineRunSame(b *testing.B) {
	one := OneVaultConfig()
	wl, err := WorkloadByName("Brighten")
	if err != nil {
		b.Fatal(err)
	}
	w := wl.Build()
	art, err := Compile(&one, w.Pipe, 2*wl.TestW, 2*wl.TestH, Opt)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	for _, bc := range []struct {
		name string
		par  int // 0 = GOMAXPROCS
	}{{"Serial", 1}, {"Parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := NewMachine(cfg)
				if err != nil {
					b.Fatal(err)
				}
				m.SetParallelism(bc.par)
				stats, err := m.RunSame(art.Prog)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(stats.Cycles), "sim-cycles")
				}
			}
		})
	}
}

// BenchmarkSimCore measures raw simulator-core throughput — Execute
// only, no image I/O or machine construction — for three Table II
// workloads on the representative vault, reusing one machine across
// iterations the way the serving pool does. Shift is the stall-heavy
// case (pure data movement: every instruction is a bank access, so the
// run is dominated by DRAM-queue and data-hazard waits the event-driven
// fast-forward skips); Brighten adds compute; GaussianBlur adds halo
// traffic. BENCH_simcore.json records this benchmark's trajectory
// across PRs (see docs/BENCHMARKS.md).
func BenchmarkSimCore(b *testing.B) {
	for _, name := range []string{"Shift", "GaussianBlur", "Brighten"} {
		b.Run(name, func(b *testing.B) {
			cfg := OneVaultConfig()
			wl, err := WorkloadByName(name)
			if err != nil {
				b.Fatal(err)
			}
			img := Synth(wl.BenchW, wl.BenchH, 1)
			pipe := wl.Build().Pipe
			art, err := Compile(&cfg, pipe, img.W, img.H, Opt)
			if err != nil {
				b.Fatal(err)
			}
			m, err := NewMachine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := compiler.LoadInput(m, art, img); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var issued int64
			for i := 0; i < b.N; i++ {
				stats, err := compiler.Execute(m, art)
				if err != nil {
					b.Fatal(err)
				}
				issued += stats.Issued
				if i == 0 {
					b.ReportMetric(float64(stats.Cycles), "sim-cycles")
				}
			}
			b.ReportMetric(float64(issued)/b.Elapsed().Seconds(), "sim-instrs/s")
		})
	}
}

// BenchmarkSimCoreFunctional is BenchmarkSimCore with the machine in
// FunctionalMode: same three workloads, same machine reuse, but the
// per-cycle pipeline model is skipped entirely and instructions execute
// at issue order. The ratio of the two benchmarks' sim-instrs/s is the
// functional-mode speedup recorded in BENCH_funcmode.json (the pixel
// outputs are bit-identical by the funcmode_test.go harness, so the
// comparison is apples-to-apples work).
func BenchmarkSimCoreFunctional(b *testing.B) {
	for _, name := range []string{"Shift", "GaussianBlur", "Brighten"} {
		b.Run(name, func(b *testing.B) {
			cfg := OneVaultConfig()
			wl, err := WorkloadByName(name)
			if err != nil {
				b.Fatal(err)
			}
			img := Synth(wl.BenchW, wl.BenchH, 1)
			pipe := wl.Build().Pipe
			art, err := Compile(&cfg, pipe, img.W, img.H, Opt)
			if err != nil {
				b.Fatal(err)
			}
			m, err := NewMachine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			m.SetMode(FunctionalMode)
			if err := compiler.LoadInput(m, art, img); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var issued int64
			for i := 0; i < b.N; i++ {
				stats, err := compiler.Execute(m, art)
				if err != nil {
					b.Fatal(err)
				}
				issued += stats.Issued
			}
			b.ReportMetric(float64(issued)/b.Elapsed().Seconds(), "sim-instrs/s")
		})
	}
}

// BenchmarkCompiler measures compilation speed of the heaviest pipeline
// (LocalLaplacian, ~20 stages).
func BenchmarkCompiler(b *testing.B) {
	cfg := OneVaultConfig()
	wl, err := WorkloadByName("LocalLaplacian")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		w := wl.Build()
		if _, err := Compile(&cfg, w.Pipe, wl.BenchW, wl.BenchH, Opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnergyModel measures the Table III energy accounting.
func BenchmarkEnergyModel(b *testing.B) {
	model := energy.DefaultModel()
	var s sim.Stats
	s.Cycles = 1 << 20
	s.DRAM.Reads = 1 << 18
	s.SIMDOps = 1 << 19
	for i := 0; i < b.N; i++ {
		br := model.Compute(&s, 32, 1, 1.0)
		if br.Total() <= 0 {
			b.Fatal("degenerate energy")
		}
	}
}
