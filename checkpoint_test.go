package ipim

// Differential harness for checkpoint/restore (docs/ARCHITECTURE.md,
// "Checkpoint format"). The contract under test: run to barrier N,
// checkpoint, restore onto a FRESH machine, run to completion — and the
// pixels, the full sim.Stats, and the machine's final architectural
// state (compared as checkpoint bytes, which cover the fault
// decision-stream positions and every DRAM/NoC counter) are
// bit-identical to the run that was never interrupted. The matrix
// crosses workloads (including the cross-vault Histogram and the DNN
// GEMM) with fast-forward/stepwise execution, serial/parallel phase
// workers, and fault injection on/off; a checkpointing run must also be
// bit-identical to a non-checkpointing one (observation must not
// perturb).

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// ckptArtifact compiles the named workload for cfg. Names with the
// "dnn:" prefix resolve in the DNN/GEMM family; the bool reports
// whether the pipeline reduces to histogram bins.
func ckptArtifact(t *testing.T, cfg *Config, name string, seed uint64) (*Artifact, *Image, bool) {
	t.Helper()
	var pipe *Pipeline
	var img *Image
	if dn, ok := strings.CutPrefix(name, "dnn:"); ok {
		wl, err := DNNWorkloadByName(dn)
		if err != nil {
			t.Fatal(err)
		}
		pipe = wl.Build().Pipe
		img = dnnImg(wl.TestW, wl.TestH)
	} else {
		wl, err := WorkloadByName(name)
		if err != nil {
			t.Fatal(err)
		}
		pipe = wl.Build().Pipe
		img = Synth(2*wl.TestW, 2*wl.TestH, seed)
	}
	art, err := Compile(cfg, pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return art, img, strings.Contains(name, "Histogram")
}

// ckptMachine builds a machine with the execution knobs that are host
// state, not architectural state — the restore path deliberately does
// not serialize them, so tests re-apply them to restored machines.
func ckptMachine(t *testing.T, cfg Config, workers int, fastForward bool, plan *FaultPlan) *Machine {
	t.Helper()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.SetParallelism(workers)
	if !fastForward {
		m.SetFastForward(false)
	}
	m.SetFaultPlan(plan)
	return m
}

// ckptExec runs art through RunContext/RunHistogramContext, reducing
// either result shape to one []float32.
func ckptExec(t *testing.T, m *Machine, art *Artifact, img *Image, hist bool, opts RunOptions) (Stats, []float32) {
	t.Helper()
	if hist {
		bins, stats, err := RunHistogramContext(context.Background(), m, art, img, opts)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		out := make([]float32, len(bins))
		for i, b := range bins {
			out[i] = float32(b)
		}
		return stats, out
	}
	out, stats, err := RunContext(context.Background(), m, art, img, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return stats, out.Pix
}

// ckptResume finishes the interrupted run a restored machine carries.
func ckptResume(t *testing.T, m *Machine, art *Artifact, hist bool) (Stats, []float32) {
	t.Helper()
	if hist {
		bins, stats, err := ResumeHistogram(context.Background(), m, art, RunOptions{})
		if err != nil {
			t.Fatalf("resume: %v", err)
		}
		out := make([]float32, len(bins))
		for i, b := range bins {
			out[i] = float32(b)
		}
		return stats, out
	}
	out, stats, err := ResumeRun(context.Background(), m, art, RunOptions{})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	return stats, out.Pix
}

// finalState snapshots a machine's complete post-run architectural
// state. Byte equality here is the strongest differential: it covers
// bank contents, controller timing, fault decision-stream positions and
// every counter the Stats fold does not expose.
func finalState(t *testing.T, m *Machine) []byte {
	t.Helper()
	data, err := m.CheckpointBytes()
	if err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	return data
}

// ckptDifferential runs the full contract for one matrix cell:
// uninterrupted vs checkpointing-while-running vs restored-and-resumed
// at the first, middle and last barrier checkpoints.
func ckptDifferential(t *testing.T, cfg Config, wlName string, workers int, fastForward bool, plan *FaultPlan, mode Mode) {
	t.Helper()
	art, img, hist := ckptArtifact(t, &cfg, wlName, 11)

	ref := ckptMachine(t, cfg, workers, fastForward, plan)
	refStats, refOut := ckptExec(t, ref, art, img, hist, RunOptions{Mode: mode})
	refFinal := finalState(t, ref)

	var ckpts [][]byte
	mc := ckptMachine(t, cfg, workers, fastForward, plan)
	ckStats, ckOut := ckptExec(t, mc, art, img, hist, RunOptions{
		Mode:            mode,
		CheckpointEvery: 1,
		CheckpointSink: func(data []byte) error {
			ckpts = append(ckpts, append([]byte(nil), data...))
			return nil
		},
	})
	if len(ckpts) == 0 {
		t.Fatal("run took no checkpoints — the differential is vacuous")
	}
	if !reflect.DeepEqual(refStats, ckStats) {
		t.Errorf("checkpointing perturbed the run:\nplain: %+v\nckpt:  %+v", refStats, ckStats)
	}
	if !reflect.DeepEqual(refOut, ckOut) {
		t.Error("checkpointing perturbed the functional output")
	}

	picks := map[int]bool{0: true, len(ckpts) / 2: true, len(ckpts) - 1: true}
	for i := range picks {
		m2, err := RestoreMachine(bytes.NewReader(ckpts[i]), cfg)
		if err != nil {
			t.Fatalf("restore checkpoint %d/%d: %v", i, len(ckpts), err)
		}
		m2.SetParallelism(workers)
		if !fastForward {
			m2.SetFastForward(false)
		}
		if !m2.HasResume() {
			t.Fatalf("checkpoint %d carries no interrupted run", i)
		}
		gotStats, gotOut := ckptResume(t, m2, art, hist)
		if !reflect.DeepEqual(refStats, gotStats) {
			t.Errorf("checkpoint %d/%d: resumed stats diverge:\nwant %+v\ngot  %+v",
				i, len(ckpts), refStats, gotStats)
		}
		if !reflect.DeepEqual(refOut, gotOut) {
			t.Errorf("checkpoint %d/%d: resumed output diverges", i, len(ckpts))
		}
		if got := finalState(t, m2); !bytes.Equal(refFinal, got) {
			t.Errorf("checkpoint %d/%d: final machine state diverges (%d vs %d bytes)",
				i, len(ckpts), len(refFinal), len(got))
		}
	}
}

// TestCheckpointResumeDifferential is the acceptance matrix: four
// workloads (incl. the DNN GEMM and the cross-vault Histogram) ×
// {fast-forward, stepwise} × {serial, 4 workers} × fault rates
// {off, 1e-6}, every cell bit-identical across an interruption.
func TestCheckpointResumeDifferential(t *testing.T) {
	for _, wlName := range []string{"GaussianBlur", "Brighten", "Histogram", "dnn:GEMM"} {
		cfg := detConfig()
		if strings.HasPrefix(wlName, "dnn:") {
			cfg = TinyConfig()
		}
		for _, ff := range []bool{true, false} {
			for _, workers := range []int{1, 4} {
				for _, rate := range []float64{0, 1e-6} {
					var plan *FaultPlan
					if rate > 0 {
						plan = &FaultPlan{Seed: 9, DRAMBitFlipRate: rate, LinkFaultRate: rate, LinkRetryPenalty: 10}
					}
					name := fmt.Sprintf("%s/ff=%v/workers=%d/faults=%g", wlName, ff, workers, rate)
					t.Run(name, func(t *testing.T) {
						ckptDifferential(t, cfg, wlName, workers, ff, plan, DefaultMode)
					})
				}
			}
		}
	}
}

// TestCheckpointResumeFunctional pins the functional-mode resume path,
// where checkpoint pacing rides the issue counter instead of the clock.
func TestCheckpointResumeFunctional(t *testing.T) {
	ckptDifferential(t, detConfig(), "GaussianBlur", 4, true, nil, FunctionalMode)
}

// TestCheckpointResumeAcrossWorkerCounts restores a serial run's
// checkpoint onto a 4-worker machine and vice versa: the worker pool is
// host scheduling, not architectural state, so the results must still
// be bit-identical.
func TestCheckpointResumeAcrossWorkerCounts(t *testing.T) {
	cfg := detConfig()
	art, img, hist := ckptArtifact(t, &cfg, "Histogram", 11)
	ref := ckptMachine(t, cfg, 1, true, nil)
	refStats, refOut := ckptExec(t, ref, art, img, hist, RunOptions{})
	refFinal := finalState(t, ref)

	for _, from := range []int{1, 4} {
		for _, to := range []int{1, 4} {
			var ckpts [][]byte
			mc := ckptMachine(t, cfg, from, true, nil)
			ckptExec(t, mc, art, img, hist, RunOptions{
				CheckpointEvery: 1,
				CheckpointSink: func(data []byte) error {
					ckpts = append(ckpts, append([]byte(nil), data...))
					return nil
				},
			})
			if len(ckpts) < 2 {
				t.Fatalf("workers=%d: run took %d checkpoints; want >= 2", from, len(ckpts))
			}
			m2, err := RestoreMachine(bytes.NewReader(ckpts[len(ckpts)/2]), cfg)
			if err != nil {
				t.Fatal(err)
			}
			m2.SetParallelism(to)
			gotStats, gotOut := ckptResume(t, m2, art, hist)
			if !reflect.DeepEqual(refStats, gotStats) {
				t.Errorf("checkpoint at workers=%d resumed at workers=%d: stats diverge", from, to)
			}
			if !reflect.DeepEqual(refOut, gotOut) {
				t.Errorf("checkpoint at workers=%d resumed at workers=%d: output diverges", from, to)
			}
			if got := finalState(t, m2); !bytes.Equal(refFinal, got) {
				t.Errorf("checkpoint at workers=%d resumed at workers=%d: final state diverges", from, to)
			}
		}
	}
}

// TestCheckpointResumeUnderActiveFaults uses a rate high enough that
// bit flips and link faults actually fire on both sides of the
// interruption: a mis-restored decision-stream position would shift
// every subsequent fault site and show up in the ECC counters, the
// retransmit counters and the final-state comparison.
func TestCheckpointResumeUnderActiveFaults(t *testing.T) {
	plan := &FaultPlan{Seed: 4, DRAMBitFlipRate: 5e-3, DRAMMultiBitFraction: 0.5, LinkFaultRate: 1e-3, LinkRetryPenalty: 20}
	cfg := detConfig()
	art, img, hist := ckptArtifact(t, &cfg, "Histogram", 11)
	ref := ckptMachine(t, cfg, 4, true, plan)
	refStats, refOut := ckptExec(t, ref, art, img, hist, RunOptions{})
	if refStats.DRAM.ECCCorrected == 0 {
		t.Fatal("no ECC corrections fired — the fault differential is vacuous")
	}
	if refStats.NoC.LinkFaults == 0 {
		t.Fatal("no link faults fired — the fault differential is vacuous")
	}
	refFinal := finalState(t, ref)

	var ckpts [][]byte
	mc := ckptMachine(t, cfg, 4, true, plan)
	ckptExec(t, mc, art, img, hist, RunOptions{
		CheckpointEvery: 1,
		CheckpointSink: func(data []byte) error {
			ckpts = append(ckpts, append([]byte(nil), data...))
			return nil
		},
	})
	for _, i := range []int{0, len(ckpts) / 2, len(ckpts) - 1} {
		m2, err := RestoreMachine(bytes.NewReader(ckpts[i]), cfg)
		if err != nil {
			t.Fatal(err)
		}
		m2.SetParallelism(4)
		gotStats, gotOut := ckptResume(t, m2, art, hist)
		if !reflect.DeepEqual(refStats, gotStats) {
			t.Errorf("checkpoint %d: fault-injected stats diverge:\nwant %+v\ngot  %+v", i, refStats, gotStats)
		}
		if !reflect.DeepEqual(refOut, gotOut) {
			t.Errorf("checkpoint %d: fault-injected output diverges", i)
		}
		if got := finalState(t, m2); !bytes.Equal(refFinal, got) {
			t.Errorf("checkpoint %d: fault-injected final state diverges", i)
		}
	}
}

// TestCheckpointBetweenRuns pins the idle-machine path: a checkpoint
// taken between runs round-trips byte-identically and carries no
// interrupted run, so Resume reports ErrNoResume.
func TestCheckpointBetweenRuns(t *testing.T) {
	cfg := detConfig()
	art, img, _ := ckptArtifact(t, &cfg, "Brighten", 5)
	m := ckptMachine(t, cfg, 1, true, nil)
	if _, _, err := Run(m, art, img); err != nil {
		t.Fatal(err)
	}
	data := finalState(t, m)
	m2, err := RestoreMachine(bytes.NewReader(data), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m2.HasResume() {
		t.Error("idle checkpoint claims an interrupted run")
	}
	if _, err := m2.Resume(); !errors.Is(err, ErrNoResume) {
		t.Errorf("Resume on idle restore: got %v, want ErrNoResume", err)
	}
	round := finalState(t, m2)
	if !bytes.Equal(data, round) {
		t.Errorf("idle checkpoint does not round-trip (%d vs %d bytes)", len(data), len(round))
	}
}

// TestCheckpointConfigMismatch: restoring onto a differently shaped
// machine must fail with ErrCheckpointConfig, not corrupt state.
func TestCheckpointConfigMismatch(t *testing.T) {
	cfg := detConfig()
	m := ckptMachine(t, cfg, 1, true, nil)
	data := finalState(t, m)
	other := detConfig()
	other.PGsPerVault = 1
	if _, err := RestoreMachine(bytes.NewReader(data), other); !errors.Is(err, ErrCheckpointConfig) {
		t.Errorf("restore onto mismatched config: got %v, want ErrCheckpointConfig", err)
	}
}
