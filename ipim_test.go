package ipim

import (
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	cfg := TinyConfig()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := WorkloadByName("Brighten")
	if err != nil {
		t.Fatal(err)
	}
	img := Synth(wl.TestW, wl.TestH, 7)
	pipe := wl.Build().Pipe
	art, err := Compile(&cfg, pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := Run(m, art, img)
	if err != nil {
		t.Fatal(err)
	}
	if out.W != img.W || out.H != img.H {
		t.Fatalf("output %dx%d", out.W, out.H)
	}
	if stats.Cycles == 0 || stats.IPC() <= 0 {
		t.Fatalf("stats: %+v", stats)
	}
	want, err := pipe.Reference(img)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Pix {
		if out.Pix[i] != want.Pix[i] {
			t.Fatalf("pixel %d: %v != %v", i, out.Pix[i], want.Pix[i])
		}
	}
}

func TestFacadeHistogram(t *testing.T) {
	cfg := TinyConfig()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wl, _ := WorkloadByName("Histogram")
	img := Synth(wl.TestW, wl.TestH, 8)
	pipe := wl.Build().Pipe
	art, err := Compile(&cfg, pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}
	bins, _, err := RunHistogram(m, art, img)
	if err != nil {
		t.Fatal(err)
	}
	var total int32
	for _, b := range bins {
		total += b
	}
	if total != int32(img.W*img.H) {
		t.Fatalf("histogram total %d != %d pixels", total, img.W*img.H)
	}
}

func TestFacadeGPUAndEnergy(t *testing.T) {
	wl, _ := WorkloadByName("GaussianBlur")
	p, err := GPUBaseline(wl.Build().Pipe, 512, 256)
	if err != nil {
		t.Fatal(err)
	}
	if p.TimeSec <= 0 {
		t.Fatal("degenerate GPU profile")
	}
	var s Stats
	s.Cycles = 1000
	s.SIMDOps = 100
	b := EnergyOf(&s, 32, 1)
	if b.Total() <= 0 {
		t.Fatal("degenerate energy breakdown")
	}
}

func TestFacadeAssembler(t *testing.T) {
	p, err := Assemble("sync 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Disassemble(p), "sync 0") {
		t.Fatal("round trip lost the instruction")
	}
}

func TestFacadeConfigsValid(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), OneVaultConfig(), TinyConfig(), TinyOneVaultConfig()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("config invalid: %v", err)
		}
	}
	if len(Workloads()) != 10 {
		t.Error("workload suite incomplete")
	}
	if len(ExperimentNames()) == 0 {
		t.Error("no experiments registered")
	}
	if NewExperiments(4) == nil {
		t.Error("nil experiment context")
	}
}
