package ipim

// Cancellation and budget tests: the tentpole robustness contract.
//
//   - RunContext under a live-but-never-fired context is bit-identical
//     to Run (the hooks are pure control);
//   - cancellation interrupts even never-syncing adversarial programs
//     and leaves the machine Reset and reusable, with a subsequent run
//     matching a fresh machine bit for bit;
//   - MaxCycles / MaxPhaseSteps budgets abort deterministically: the
//     same budget on the same workload blames the same vault and
//     program counter at every phase-worker count.

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// The adversarial SIMB corpus: programs a well-formed compiler never
// emits but a /v1/simb client (or a compiler bug) absolutely can.
var adversarialPrograms = map[string]string{
	// Counts forever; never reaches the sync.
	"infinite-loop": `
seti_crf c0, =loop
loop:
calc_crf iadd c1, c1, #1
jump c0
sync 1
`,
	// A two-instruction spin: the branch targets itself via its label.
	"self-branch": `
seti_crf c0, =spin
spin:
jump c0
`,
	// Issues unboundedly without ever syncing, with a conditional
	// branch kept always-taken.
	"never-sync": `
seti_crf c1, #1
seti_crf c0, =loop
loop:
calc_crf iadd c2, c2, #1
cjump c1, c0
`,
}

// assembleAdversarial returns a finalized corpus program.
func assembleAdversarial(t *testing.T, name string) *Program {
	t.Helper()
	src, ok := adversarialPrograms[name]
	if !ok {
		t.Fatalf("no adversarial program %q", name)
	}
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble %s: %v", name, err)
	}
	if err := p.Finalize(); err != nil {
		t.Fatalf("finalize %s: %v", name, err)
	}
	return p
}

// detRunContext is detRun through the RunContext path, with a LIVE
// (cancellable, never cancelled) context so the per-vault interrupt
// hook is armed and polled — proving the hook itself is timing-free.
func detRunContext(t *testing.T, wlName string, seed uint64, parallelism int) (Stats, []float32) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := detConfig()
	wl, err := WorkloadByName(wlName)
	if err != nil {
		t.Fatal(err)
	}
	img := Synth(2*wl.TestW, 2*wl.TestH, seed)
	art, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatalf("compile %s: %v", wlName, err)
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.SetParallelism(parallelism)
	if wlName == "Histogram" {
		bins, stats, err := RunHistogramContext(ctx, m, art, img, RunOptions{})
		if err != nil {
			t.Fatalf("run %s: %v", wlName, err)
		}
		out := make([]float32, len(bins))
		for i, b := range bins {
			out[i] = float32(b)
		}
		return stats, out
	}
	out, stats, err := RunContext(ctx, m, art, img, RunOptions{})
	if err != nil {
		t.Fatalf("run %s: %v", wlName, err)
	}
	return stats, out.Pix
}

// TestRunContextMatchesRun: with a non-expiring context and no budget,
// the cancellable path must be bit-identical to Run — stats and output,
// serial and parallel — across the workload sweep.
func TestRunContextMatchesRun(t *testing.T) {
	for _, wlName := range []string{"Brighten", "GaussianBlur", "Shift", "Histogram"} {
		for _, par := range []int{1, 4} {
			ref, refOut := detRun(t, wlName, 11, par)
			got, gotOut := detRunContext(t, wlName, 11, par)
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("%s par=%d: RunContext stats diverge from Run:\nwant %+v\ngot  %+v",
					wlName, par, ref, got)
			}
			if !reflect.DeepEqual(refOut, gotOut) {
				t.Errorf("%s par=%d: RunContext output diverges from Run", wlName, par)
			}
		}
	}
}

// TestCancelAdversarialPrograms: every corpus program must be
// interrupted by a context deadline, report ErrCancelled (wrapping the
// deadline cause), and leave the machine reusable.
func TestCancelAdversarialPrograms(t *testing.T) {
	for name := range adversarialPrograms {
		for _, par := range []int{1, 4} {
			t.Run(name, func(t *testing.T) {
				prog := assembleAdversarial(t, name)
				m, err := NewMachine(TinyConfig())
				if err != nil {
					t.Fatal(err)
				}
				m.SetParallelism(par)
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				defer cancel()
				t0 := time.Now()
				_, err = m.RunSameContext(ctx, prog)
				elapsed := time.Since(t0)
				if !errors.Is(err, ErrCancelled) {
					t.Fatalf("err = %v, want ErrCancelled", err)
				}
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Errorf("err = %v, must wrap the context cause", err)
				}
				if elapsed > 10*time.Second {
					t.Errorf("cancellation took %v — interrupt hook not reached", elapsed)
				}
				assertReusableAfterAbort(t, m)
			})
		}
	}
}

// assertReusableAfterAbort runs a real workload on an aborted machine
// and on a factory-fresh one and demands bit-identical stats and
// output: the documented post-abort state (clocks rewound, queues
// drained, DRAM/NoC timing reset) is indistinguishable from new.
func assertReusableAfterAbort(t *testing.T, m *Machine) {
	t.Helper()
	cfg := TinyConfig()
	wl, err := WorkloadByName("Brighten")
	if err != nil {
		t.Fatal(err)
	}
	img := Synth(wl.TestW, wl.TestH, 5)
	art, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := Run(m, art, img)
	if err != nil {
		t.Fatalf("reuse after abort: %v", err)
	}
	fresh, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh.SetParallelism(m.Parallelism())
	wantOut, wantStats, err := Run(fresh, art, img)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stats, wantStats) {
		t.Errorf("post-abort stats differ from a fresh machine:\nfresh:   %+v\nreused:  %+v",
			wantStats, stats)
	}
	if !reflect.DeepEqual(out.Pix, wantOut.Pix) {
		t.Error("post-abort output differs from a fresh machine")
	}
}

// TestMaxCyclesDeterministicErrorPoint: the same MaxCycles budget on
// the same workload must produce the SAME error — same vault, same pc,
// same cycle count in the message — at every phase-worker count.
func TestMaxCyclesDeterministicErrorPoint(t *testing.T) {
	cfg := detConfig()
	wl, err := WorkloadByName("GaussianBlur")
	if err != nil {
		t.Fatal(err)
	}
	img := Synth(2*wl.TestW, 2*wl.TestH, 3)
	art, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}
	// Establish the unbudgeted cost, then budget half of it so the
	// abort lands mid-run.
	ref, _ := detRun(t, "GaussianBlur", 3, 1)
	budget := RunOptions{MaxCycles: ref.Cycles / 2}
	if budget.MaxCycles < 1 {
		t.Fatalf("degenerate reference run: %d cycles", ref.Cycles)
	}

	var wantErr string
	for i, par := range []int{1, 2, 4} {
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.SetParallelism(par)
		_, _, err = RunContext(context.Background(), m, art, img, budget)
		if !errors.Is(err, ErrCycleBudget) {
			t.Fatalf("par=%d: err = %v, want ErrCycleBudget", par, err)
		}
		if i == 0 {
			wantErr = err.Error()
			if !strings.Contains(wantErr, "vault") {
				t.Fatalf("budget error does not name the vault: %q", wantErr)
			}
			continue
		}
		if got := err.Error(); got != wantErr {
			t.Errorf("par=%d: error point diverges:\nwant %q\ngot  %q", par, wantErr, got)
		}
	}
}

// TestMaxPhaseStepsCatchesNeverSync: the per-phase instruction budget
// trips on a program that spins without syncing, where MaxCycles-style
// wall-clock budgets would also work but the step budget is the
// precise diagnostic.
func TestMaxPhaseStepsCatchesNeverSync(t *testing.T) {
	prog := assembleAdversarial(t, "never-sync")
	m, err := NewMachine(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.SetBudget(RunOptions{MaxPhaseSteps: 10_000})
	_, err = m.RunSame(prog)
	if !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("err = %v, want ErrCycleBudget", err)
	}
	if !strings.Contains(err.Error(), "without sync") {
		t.Errorf("step-budget error should name the failure mode: %q", err)
	}
	assertReusableAfterAbort(t, m)
}

// TestFunctionalCancelAdversarialPrograms: FunctionalMode has no cycle
// clock, so cancellation must ride the issued-instruction counter — an
// adversarial never-syncing program on a functional machine must still
// be interrupted by the context deadline, and the machine must come
// back Reset-equivalent (mode restored to cycle for the comparison).
func TestFunctionalCancelAdversarialPrograms(t *testing.T) {
	for name := range adversarialPrograms {
		for _, par := range []int{1, 4} {
			t.Run(name, func(t *testing.T) {
				prog := assembleAdversarial(t, name)
				m, err := NewMachine(TinyConfig())
				if err != nil {
					t.Fatal(err)
				}
				m.SetParallelism(par)
				m.SetMode(FunctionalMode)
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				defer cancel()
				t0 := time.Now()
				_, err = m.RunSameContext(ctx, prog)
				elapsed := time.Since(t0)
				if !errors.Is(err, ErrCancelled) {
					t.Fatalf("err = %v, want ErrCancelled", err)
				}
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Errorf("err = %v, must wrap the context cause", err)
				}
				if elapsed > 10*time.Second {
					t.Errorf("cancellation took %v — the functional interrupt poll never fired", elapsed)
				}
				m.SetMode(DefaultMode)
				assertReusableAfterAbort(t, m)
			})
		}
	}
}

// TestFunctionalMaxCyclesIsInstructionBudget: with no clock to measure
// against, a functional run reinterprets MaxCycles as an
// issued-instruction bound — conservative (an instruction costs at
// least a cycle), deterministic, and it must actually terminate the
// never-syncing corpus.
func TestFunctionalMaxCyclesIsInstructionBudget(t *testing.T) {
	prog := assembleAdversarial(t, "infinite-loop")
	m, err := NewMachine(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.SetMode(FunctionalMode)
	m.SetBudget(RunOptions{MaxCycles: 10_000})
	_, err = m.RunSame(prog)
	if !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("err = %v, want ErrCycleBudget", err)
	}
	if !strings.Contains(err.Error(), "instructions into the run") {
		t.Errorf("functional budget error should name the instruction bound: %q", err)
	}
	m.SetMode(DefaultMode)
	assertReusableAfterAbort(t, m)
}

// TestBudgetAbortThenReuse: a MaxCycles abort on a REAL workload (not
// just the adversarial corpus) also leaves the machine equivalent to
// fresh.
func TestBudgetAbortThenReuse(t *testing.T) {
	cfg := TinyConfig()
	wl, err := WorkloadByName("GaussianBlur")
	if err != nil {
		t.Fatal(err)
	}
	img := Synth(wl.TestW, wl.TestH, 9)
	art, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, full, err := Run(m, art, img)
	if err != nil {
		t.Fatal(err)
	}
	// Abort a second run partway through on the same machine.
	_, _, err = RunContext(context.Background(), m, art, img, RunOptions{MaxCycles: full.Cycles / 3})
	if !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("err = %v, want ErrCycleBudget", err)
	}
	assertReusableAfterAbort(t, m)
}
