// Command doccheck enforces the godoc contract on the packages whose
// API the architecture guide documents: every exported identifier —
// package, type, function, method, and exported struct field or
// interface method of an exported type — must carry a doc comment.
//
// Usage:
//
//	go run ./scripts/doccheck [pkgdir ...]
//
// With no arguments it checks the repo's documented core: the root
// ipim package, internal/sim, internal/cube, and internal/vault. An
// allowlist (allow below) exempts identifiers whose meaning is fully
// carried by a group comment or by the field name itself; keep it
// small and justified.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// defaultDirs are the packages the godoc pass covers (relative to the
// repo root; see docs/ARCHITECTURE.md).
var defaultDirs = []string{".", "internal/sim", "internal/cube", "internal/vault"}

// allow exempts "pkgdir:Identifier" pairs. Each entry needs a reason.
var allow = map[string]string{
	// Re-export blocks in the root package carry one doc comment per
	// name already; the aliased definitions hold the full contracts.
	// (None currently exempted — the list exists so future exemptions
	// are explicit and reviewed.)
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	var missing []string
	for _, dir := range dirs {
		m, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		missing = append(missing, m...)
	}
	sort.Strings(missing)
	for _, m := range missing {
		fmt.Println(m)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifiers lack doc comments\n", len(missing))
		os.Exit(1)
	}
}

// checkDir parses one package directory (tests excluded) and returns a
// line per undocumented exported identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, what, name string) {
		if _, ok := allow[dir+":"+name]; ok {
			return
		}
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, what, name))
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			report(token.NoPos, "package", pkg.Name)
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
						report(d.Pos(), "func", funcName(d))
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return missing, nil
}

// exportedRecv reports whether a method's receiver type is exported
// (methods on unexported types are internal detail).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// checkGenDecl walks a const/var/type declaration. A doc comment on the
// grouped declaration covers its specs (the standard godoc idiom for
// const blocks); an individual spec may instead carry its own.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if d.Doc == nil && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
			checkTypeBody(s, report)
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					report(n.Pos(), kind, n.Name)
				}
			}
		}
	}
}

// checkTypeBody requires docs on exported fields of exported structs
// and exported methods of exported interfaces. A same-line comment
// counts (the common idiom for short unit notes).
func checkTypeBody(s *ast.TypeSpec, report func(token.Pos, string, string)) {
	switch t := s.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			if f.Doc != nil || f.Comment != nil {
				continue
			}
			for _, n := range f.Names {
				if n.IsExported() {
					report(n.Pos(), "field", s.Name.Name+"."+n.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, f := range t.Methods.List {
			if f.Doc != nil || f.Comment != nil {
				continue
			}
			for _, n := range f.Names {
				if n.IsExported() {
					report(n.Pos(), "interface method", s.Name.Name+"."+n.Name)
				}
			}
		}
	}
}
