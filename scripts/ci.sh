#!/bin/sh
# The canonical repository check: formatting, vet, build, and the full
# test suite under the race detector. Run from the repository root.
set -eu
cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
echo "ci: all checks passed"
