#!/bin/sh
# The canonical repository check: formatting, vet, build, the full test
# suite under the race detector with coverage, and a coverage floor.
# Run from the repository root.
#
# Coverage is per-package (plain -cover, no -coverpkg): cross-package
# instrumentation makes every test binary count statements in all of
# ./internal/..., which under -race pushes the slow simulation packages
# past the per-package test timeout on small machines. The explicit
# -timeout leaves headroom for race-instrumented runs on few cores.
set -eu
cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

go vet ./...
go build ./...

# Documentation gates. doccheck requires a doc comment on every
# exported identifier of the documented core packages (root ipim,
# internal/sim, internal/cube, internal/vault); linkcheck verifies the
# relative links in README/DESIGN/EXPERIMENTS/ROADMAP and docs/*.md
# resolve. Both live in scripts/ and compile under `go build ./...`.
go run ./scripts/doccheck
go run ./scripts/linkcheck

go test -race -cover -coverprofile=coverage.out -timeout 30m ./...

# Benchmark smoke: one iteration of the full-machine benchmark (the
# fast-forward hot path) and of the functional-mode mirror, so neither
# bench harness can rot between PRs. -benchtime=1x keeps these to
# build-and-run checks; any panic or error fails CI. Real numbers come
# from `go test -bench` per docs/BENCHMARKS.md.
go test -run='^$' -bench='^BenchmarkFullMachineRunSame$' -benchtime=1x .
go test -run='^$' -bench='^BenchmarkSimCoreFunctional$' -benchtime=1x .

# Functional-mode smoke: the Table II suite under -mode functional on
# shrunk images, through the shipped CLI. Cycle-derived columns read
# zero by design. The funcmode_test.go differential matrix (and the
# golden-model sweep it includes) is the real correctness gate; this
# slot keeps the CLI surface and the functional end-to-end path from
# rotting.
go run ./cmd/ipim-bench -mode functional -div 8 -json - > /dev/null

# DNN golden-sweep smoke: the DNN/GEMM family at tiny shapes through
# the shipped CLI, in cycle mode and in functional mode. The
# dnn_test.go sweep (device vs host golden vs reference, both
# schedules, all modes) is the real correctness gate under -race
# above; this slot keeps the -exp dnn / -json-dnn surfaces and the
# multi-array end-to-end path from rotting.
go run ./cmd/ipim-bench -exp dnn -div 8 > /dev/null
go run ./cmd/ipim-bench -mode functional -div 8 -json-dnn - > /dev/null

# Checkpoint/resume smoke: force a mid-run budget abort with a
# checkpoint file, then resume it to completion through the shipped
# CLI — one Table II workload with real phase barriers (Histogram) and
# one DNN workload (GEMM runs under ipim-bench's dnn sweep above). The
# checkpoint_test.go differential matrix (4 workloads × FF/stepwise ×
# worker counts × fault rates, restore at first/middle/last barrier)
# is the real correctness gate under -race above; this slot keeps the
# -checkpoint/-resume flag surface and the restore-from-disk path from
# rotting. The chaos soak (injected worker panics + pool teardown,
# byte-identical responses) runs under -race in the suite above as
# TestChaosCrashRecoverySoak / TestDrainRestartResumesJournal.
ckpt_dir=$(mktemp -d)
trap 'rm -rf "$ckpt_dir"' EXIT
go run ./cmd/ipim-run -workload Histogram -W 64 -H 32 \
    -checkpoint "$ckpt_dir/ci.ckpt" -max-cycles 2000 > /dev/null 2>&1 || true
test -s "$ckpt_dir/ci.ckpt"
go run ./cmd/ipim-run -workload Histogram -W 64 -H 32 \
    -resume "$ckpt_dir/ci.ckpt" -max-cycles 10000000 > /dev/null
go test . -run '^TestCheckpointResumeDifferential$/^dnn:GEMM' -count=1

# Autotuner smoke: a real parallel grid search through the ipim-tune
# CLI (tiny machine, small probe) plus the serve background-tuning
# integration path. The unit suite covers both under -race above; this
# slot keeps the shipped binary's flag surface and the end-to-end
# search loop from rotting.
go run ./cmd/ipim-tune -config tiny -W 32 -H 16 -strategy grid -workers 4 -json > /dev/null
go test ./internal/serve -run '^TestBackgroundTuningSoak$' -count=1

# Fleet smoke: real ipim-router + ipim-serve binaries, one router
# fronting two workers, a Table II request and a 4-frame stream pushed
# through the router with the stream's owning worker SIGKILLed
# mid-stream; asserts the client still got byte-identical frames and
# that ipim_router_failovers_total moved. The in-process differential
# gate (TestFleetDifferentialGate) runs under -race in the suite
# above; this slot keeps the shipped binaries' flag surface and the
# cross-process splice path from rotting.
go test ./internal/fleet -run '^TestFleetProcessSmoke$' -count=1

# Fuzz smoke: a short real fuzzing run (not just the seed corpus, which
# plain `go test` already replays) so the fuzz targets can't bit-rot
# between PRs. Keep -fuzztime small; this is a build/harness check, not
# a bug hunt.
go test ./internal/isa -run='^$' -fuzz='^FuzzAssemble$' -fuzztime=10s
go test ./internal/pixel -run='^$' -fuzz='^FuzzNetpbm$' -fuzztime=10s
go test . -run='^$' -fuzz='^FuzzFunctionalVsTiming$' -fuzztime=10s
go test ./internal/cube -run='^$' -fuzz='^FuzzCheckpointDecode$' -fuzztime=10s

# Coverage floor over the internal packages' own statements (cmd/ and
# examples/ mains are exercised end-to-end by the examples smoke test
# and serve tests, which plain -cover can't attribute). Baseline at the
# time the floor was set: 89.9% (2026-08-06, after the parallel-
# simulation PR). The floor leaves a little room for refactoring noise;
# raise it when the baseline moves up, never lower it to make a PR pass.
floor=85.0
grep -E '^mode:|^ipim/internal/' coverage.out > coverage.internal.out
total=$(go tool cover -func=coverage.internal.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
echo "ci: test coverage ${total}% (floor ${floor}%)"
ok=$(awk -v t="$total" -v f="$floor" 'BEGIN { print (t >= f) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
    echo "ci: coverage ${total}% fell below the ${floor}% floor" >&2
    exit 1
fi

echo "ci: all checks passed"
