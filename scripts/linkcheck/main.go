// Command linkcheck verifies that the relative links in the repo's
// markdown documentation resolve: every non-URL link target in
// README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md, and docs/*.md must
// name an existing file or directory (anchors are stripped before the
// check; http(s) and mailto links are skipped — the docs must stay
// checkable offline).
//
// Usage:
//
//	go run ./scripts/linkcheck [file.md ...]
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var defaultDocs = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"}

// linkRe matches inline markdown links [text](target). Images share the
// syntax, so they are checked too.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		files = defaultDocs
		docs, _ := filepath.Glob("docs/*.md")
		files = append(files, docs...)
	}
	broken := 0
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		base := filepath.Dir(f)
		for i, line := range strings.Split(string(b), "\n") {
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skip(target) {
					continue
				}
				if frag := strings.IndexByte(target, '#'); frag >= 0 {
					target = target[:frag]
					if target == "" {
						continue // same-file anchor
					}
				}
				p := filepath.Join(base, filepath.FromSlash(target))
				if _, err := os.Stat(p); err != nil {
					fmt.Printf("%s:%d: broken link %q (%s does not exist)\n", f, i+1, m[1], p)
					broken++
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken relative links\n", broken)
		os.Exit(1)
	}
}

// skip reports whether a link target is outside the checker's scope:
// absolute URLs, mail links, and in-page anchors.
func skip(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
